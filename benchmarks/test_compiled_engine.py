"""Compiled step kernels: wall-clock vs the interpreted engines.

The compiled engine generates one specialized, monolithic step function
per machine configuration — config constants folded into literals,
component dispatch inlined, tracer and fault branches specialized away —
and the ladder runs it instead of the interpreted loop.  This benchmark
measures the cold headline sweep (simcache disabled by construction —
``simulate()`` never touches it — and replay off in every arm so the
comparison isolates codegen): the reference loop, the interpreted
idle-skip engine, and the compiled kernel all simulate the same
configurations, the cycle counts must agree, the per-config table is
published to ``benchmarks/results/compiled_engine.txt``, and two
headline claims are enforced: >= 2x over the reference loop overall,
and >= 3x on the issue-dominated PIPE point (the cache-resident ALU
loop below), where the inlined frontend state machines and the
program-specialized dispatch table carry the whole win.
Kernel compilation happens inside the timed region on the first round
(each config compiles once per process), so the cost of codegen itself
is part of the cold number.
"""

import time

from repro.asm import assemble
from repro.core.compiled import clear_compile_cache, compile_stats
from repro.core.config import MachineConfig

from repro.core.simulator import simulate

# The headline sweep spans the three fetch strategies: the Table II
# PIPE machines (issue-dominated, where the win is pure codegen), the
# TIB machine, and the conventional cache against slow memories (where
# the folded skip block dominates).
_CONFIGS = {
    "pipe-16-16-c128-mat6": lambda: MachineConfig.pipe(
        "16-16", 128, memory_access_time=6
    ),
    "pipe-16-16-c512-mat6": lambda: MachineConfig.pipe(
        "16-16", 512, memory_access_time=6
    ),
    "tib-128-mat6": lambda: MachineConfig.tib(128, memory_access_time=6),
    "conventional-128-mat16": lambda: MachineConfig.conventional(
        128, memory_access_time=16
    ),
    "conventional-128-mat32": lambda: MachineConfig.conventional(
        128, memory_access_time=32
    ),
    "conventional-32-mat32": lambda: MachineConfig.conventional(
        32, memory_access_time=32
    ),
}

_ENGINES = (
    ("reference", {"skip": False, "replay": False, "compiled": False}),
    ("idle-skip", {"skip": True, "replay": False, "compiled": False}),
    ("compiled", {"skip": True, "replay": False, "compiled": True}),
)

# The issue-dominated PIPE point: a cache-resident ALU/branch loop with
# no data-memory traffic, so nearly every cycle is an issue cycle and
# the wall-clock is pure frontend + dispatch work.  This is the point
# the inlined fetch state machines and the program-specialized handler
# table exist for; the Livermore points above are bounded by the shared
# data-queue traffic instead.  Target: >= 3x over the reference loop.
_ISSUE_POINT = "pipe-16-16-c512-alu-loop"
_ISSUE_SOURCE = """
    li r1, 12000
    li r2, 0
    li r3, 7
    lbr b0, loop
loop:
    add r2, r2, r3
    xor r4, r2, r1
    slli r5, r2, 3
    and r6, r4, r5
    or r0, r6, r3
    srli r6, r0, 2
    sub r5, r6, r3
    add r4, r5, r2
    subi r1, r1, 1
    pbrne b0, r1, 2
    add r2, r2, r3
    xor r4, r2, r5
    halt
"""


def test_compiled_kernel_speedup(context, benchmark, results_dir):
    clear_compile_cache()
    rounds = 3

    def timed(config, program, kwargs) -> tuple[float, int]:
        best = float("inf")
        cycles = 0
        for _ in range(rounds):
            start = time.perf_counter()
            result = simulate(config, program, **kwargs)
            best = min(best, time.perf_counter() - start)
            assert result.halted
            cycles = result.cycles
        return best, cycles

    points = [
        (name, factory(), context.program)
        for name, factory in sorted(_CONFIGS.items())
    ]
    points.append(
        (
            _ISSUE_POINT,
            MachineConfig.pipe("16-16", 512, memory_access_time=6),
            assemble(_ISSUE_SOURCE),
        )
    )
    rows = []
    totals = {tag: 0.0 for tag, _ in _ENGINES}
    for name, config, program in points:
        cell = {}
        cycle_counts = set()
        for tag, kwargs in _ENGINES:
            seconds, cycles = timed(config, program, kwargs)
            cell[tag] = seconds
            totals[tag] += seconds
            cycle_counts.add(cycles)
        assert len(cycle_counts) == 1, (
            f"{name}: engines disagree on the cycle count: {cycle_counts}"
        )
        rows.append((name, cycle_counts.pop(), cell))

    speedup = totals["reference"] / totals["compiled"]
    stats = compile_stats()
    lines = [
        "Compiled step kernels: wall-clock vs the interpreted engines",
        f"(workload scale {context.scale}, min of {rounds} runs per cell,",
        " replay off in every arm; first compiled round pays codegen)",
        "",
        f"{'config':<26} {'cycles':>10} {'reference':>10} {'idle-skip':>10} "
        f"{'compiled':>9} {'speedup':>8}",
    ]
    for name, cycles, cell in rows:
        lines.append(
            f"{name:<26} {cycles:>10} {cell['reference']:>9.3f}s "
            f"{cell['idle-skip']:>9.3f}s {cell['compiled']:>8.3f}s "
            f"{cell['reference'] / cell['compiled']:>7.2f}x"
        )
    issue_cell = next(cell for name, _c, cell in rows if name == _ISSUE_POINT)
    issue_speedup = issue_cell["reference"] / issue_cell["compiled"]
    lines += [
        "",
        f"kernels compiled: {stats['kernels']} "
        f"(one per configuration, cached for the process); "
        f"{stats['dispatch_tables']} per-program dispatch table(s), "
        f"{stats['dispatch_handlers']} handler(s)",
        f"overall speedup vs reference: {speedup:.2f}x (target >= 2x)",
        f"overall speedup vs idle-skip: "
        f"{totals['idle-skip'] / totals['compiled']:.2f}x",
        f"issue-dominated point ({_ISSUE_POINT}): "
        f"{issue_speedup:.2f}x vs reference (target >= 3x)",
    ]
    text = "\n".join(lines) + "\n"
    print(f"\n{text}")
    (results_dir / "compiled_engine.txt").write_text(text)

    result = benchmark.pedantic(
        lambda: simulate(
            _CONFIGS["pipe-16-16-c128-mat6"](),
            context.program,
            skip=True,
            replay=False,
            compiled=True,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["kernels_compiled"] = stats["kernels"]
    benchmark.extra_info["issue_point_speedup"] = round(issue_speedup, 2)
    assert speedup >= 2.0, (
        f"the compiled kernels delivered only {speedup:.2f}x over the "
        "reference loop on the cold headline sweep (target >= 2x)"
    )
    assert issue_speedup >= 3.0, (
        f"the inlined frontend + specialized dispatch delivered only "
        f"{issue_speedup:.2f}x on the issue-dominated PIPE point "
        "(target >= 3x)"
    )
