"""Performance of the simulator itself (not a paper experiment).

Measures simulated-cycles-per-second for each fetch strategy and for
the functional simulator, so regressions in the simulator's own speed
are visible in benchmark history.
"""

import time

import pytest

from repro.core.config import MachineConfig
from repro.core.simulator import simulate, simulate_traced
from repro.core.sweep import run_cache_sweep
from repro.cpu.functional import run_functional

CONFIGS = {
    "pipe-16-16": lambda: MachineConfig.pipe("16-16", 128, memory_access_time=6),
    "pipe-8-8-narrow": lambda: MachineConfig.pipe(
        "8-8", 32, memory_access_time=6, input_bus_width=4
    ),
    "conventional": lambda: MachineConfig.conventional(128, memory_access_time=6),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_cycle_simulation_speed(name, context, benchmark):
    config = CONFIGS[name]()
    result = benchmark.pedantic(
        lambda: simulate(config, context.program), rounds=1, iterations=1
    )
    assert result.halted
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["instructions"] = result.instructions


def test_functional_simulation_speed(context, benchmark):
    result = benchmark.pedantic(
        lambda: run_functional(context.program), rounds=1, iterations=1
    )
    assert result.halted
    benchmark.extra_info["instructions"] = result.instructions


def test_trace_overhead_when_disabled(context, benchmark):
    """Guard: instrumentation must stay near-free while tracing is off.

    Every emit site in the hot loop is one ``if tracer.enabled:`` branch
    against the shared NULL_TRACER, so a plain ``simulate()`` *is* the
    disabled-tracing path — there is no un-instrumented simulator left
    to measure against in-process.  Two checks keep the cost honest:

    * pytest-benchmark records the disabled-path wall time, so the
      cross-commit history (which spans the pre-instrumentation
      simulator) shows any regression in the hot loop itself;
    * within this run, the disabled path must be at least as fast as the
      same simulation with a live metrics sink (5% noise allowance) —
      if "disabled" ever approaches the cost of actually aggregating
      every event, the guard trips.

    Timings use min-of-N so scheduler noise lengthens neither side.
    """
    config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
    rounds = 3

    def timed(fn) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
            assert result.halted
        return best

    enabled_best = timed(lambda: simulate_traced(config, context.program))
    disabled_best = timed(lambda: simulate(config, context.program))
    result = benchmark.pedantic(
        lambda: simulate(config, context.program), rounds=1, iterations=1
    )
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["disabled_seconds"] = round(disabled_best, 4)
    benchmark.extra_info["enabled_metrics_seconds"] = round(enabled_best, 4)
    assert disabled_best <= enabled_best * 1.05, (
        f"disabled tracing took {disabled_best:.3f}s, within 5% of the "
        f"fully aggregated run ({enabled_best:.3f}s) — the disabled "
        "branch is no longer near-free"
    )


_SKIP_CONFIGS = {
    "conventional-128-mat32": lambda: MachineConfig.conventional(
        128, memory_access_time=32
    ),
    "conventional-32-mat32": lambda: MachineConfig.conventional(
        32, memory_access_time=32
    ),
    "conventional-128-mat16": lambda: MachineConfig.conventional(
        128, memory_access_time=16
    ),
}


def test_idle_skip_speedup(context, benchmark, results_dir):
    """Idle-cycle skipping vs the reference loop, memory-dominated sweep.

    The conventional cache with a slow external memory spends most of
    its cycles waiting on a single outstanding fill — exactly the
    quiescent spans the skip scheduler jumps over.  This benchmark runs
    the same configurations under both engines (min-of-N wall time),
    checks the cycle counts agree, publishes the per-config table to
    ``benchmarks/results/idle_skip.txt``, and enforces the headline
    claim: >= 3x overall on memory_access_time-dominated configs.
    """
    rounds = 3

    # replay off in both arms: this benchmark isolates the idle-skip
    # layer (loop replay has its own benchmark below).
    def timed(config, skip: bool) -> tuple[float, int]:
        best = float("inf")
        cycles = 0
        for _ in range(rounds):
            start = time.perf_counter()
            result = simulate(config, context.program, skip=skip, replay=False)
            best = min(best, time.perf_counter() - start)
            assert result.halted
            cycles = result.cycles
        return best, cycles

    rows = []
    headline_on = headline_off = 0.0
    for name, factory in sorted(_SKIP_CONFIGS.items()):
        config = factory()
        on_seconds, on_cycles = timed(config, skip=True)
        off_seconds, off_cycles = timed(config, skip=False)
        assert on_cycles == off_cycles, (
            f"{name}: skip engine simulated {on_cycles} cycles but the "
            f"reference loop simulated {off_cycles}"
        )
        # The headline claim is about memory-dominated configs; the
        # mat16 row is context showing how the win scales with latency.
        if config.memory_access_time >= 32:
            headline_on += on_seconds
            headline_off += off_seconds
        rows.append((name, on_cycles, on_seconds, off_seconds))

    speedup = headline_off / headline_on
    lines = [
        "Idle-cycle-skipping scheduler: wall-clock vs the reference loop",
        f"(workload scale {context.scale}, min of {rounds} runs per cell)",
        "",
        f"{'config':<26} {'cycles':>10} {'skip-on':>9} {'skip-off':>9} {'speedup':>8}",
    ]
    for name, cycles, on_seconds, off_seconds in rows:
        lines.append(
            f"{name:<26} {cycles:>10} {on_seconds:>8.3f}s {off_seconds:>8.3f}s "
            f"{off_seconds / on_seconds:>7.2f}x"
        )
    lines += [
        "",
        f"memory-dominated (mat>=32) speedup: {speedup:.2f}x (target >= 3x)",
    ]
    text = "\n".join(lines) + "\n"
    print(f"\n{text}")
    (results_dir / "idle_skip.txt").write_text(text)

    result = benchmark.pedantic(
        lambda: simulate(_SKIP_CONFIGS["conventional-128-mat32"](), context.program),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 3.0, (
        f"idle-cycle skipping delivered only {speedup:.2f}x on the "
        "memory-dominated sweep (target >= 3x)"
    )


_REPLAY_CONFIGS = {
    # the Table II headline machine: the full --scale 1.0 run of record
    "pipe-16-16-c128-mat6": lambda: MachineConfig.pipe(
        "16-16", 128, memory_access_time=6
    ),
    "pipe-16-16-c512-mat6": lambda: MachineConfig.pipe(
        "16-16", 512, memory_access_time=6
    ),
    "conventional-128-mat16": lambda: MachineConfig.conventional(
        128, memory_access_time=16
    ),
}


def test_warm_replay_speedup(context, benchmark, results_dir):
    """Steady-state loop replay vs the idle-skip engine alone.

    The Livermore loops are loop-dominated by construction: once warm,
    every iteration repeats the same cycle-by-cycle evolution, which is
    exactly what the replay engine memoizes.  This benchmark runs the
    same configurations with replay on and off (both with idle-skipping
    on, min-of-N wall time), checks the cycle counts agree, publishes
    the per-config table to ``benchmarks/results/warm_replay.txt``, and
    enforces the headline claim: >= 2x on the loop-dominated runs.
    """
    rounds = 3

    def timed(config, replay: bool) -> tuple[float, int]:
        best = float("inf")
        cycles = 0
        for _ in range(rounds):
            start = time.perf_counter()
            result = simulate(config, context.program, skip=True, replay=replay)
            best = min(best, time.perf_counter() - start)
            assert result.halted
            cycles = result.cycles
        return best, cycles

    rows = []
    total_on = total_off = 0.0
    for name, factory in sorted(_REPLAY_CONFIGS.items()):
        config = factory()
        on_seconds, on_cycles = timed(config, replay=True)
        off_seconds, off_cycles = timed(config, replay=False)
        assert on_cycles == off_cycles, (
            f"{name}: replay engine simulated {on_cycles} cycles but the "
            f"idle-skip engine simulated {off_cycles}"
        )
        total_on += on_seconds
        total_off += off_seconds
        rows.append((name, on_cycles, on_seconds, off_seconds))

    speedup = total_off / total_on
    lines = [
        "Steady-state loop replay: wall-clock vs the idle-skip engine",
        f"(workload scale {context.scale}, min of {rounds} runs per cell)",
        "",
        f"{'config':<26} {'cycles':>10} {'replay-on':>10} {'replay-off':>11} "
        f"{'speedup':>8}",
    ]
    for name, cycles, on_seconds, off_seconds in rows:
        lines.append(
            f"{name:<26} {cycles:>10} {on_seconds:>9.3f}s {off_seconds:>10.3f}s "
            f"{off_seconds / on_seconds:>7.2f}x"
        )
    lines += [
        "",
        f"loop-dominated overall speedup: {speedup:.2f}x (target >= 2x)",
    ]
    text = "\n".join(lines) + "\n"
    print(f"\n{text}")
    (results_dir / "warm_replay.txt").write_text(text)

    result = benchmark.pedantic(
        lambda: simulate(
            _REPLAY_CONFIGS["pipe-16-16-c128-mat6"](),
            context.program,
            skip=True,
            replay=True,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 2.0, (
        f"steady-state replay delivered only {speedup:.2f}x on the "
        "loop-dominated sweep (target >= 2x)"
    )


_SWEEP_SIZES = (64, 128, 256)
_SWEEP_STRATEGIES = ("PIPE 16-16", "conventional")


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "parallel-2"])
def test_sweep_throughput(jobs, context, benchmark):
    """Sweep-engine throughput: points/second for a 2-strategy x 3-size
    sweep, serial vs parallel fan-out (no result cache, so every point
    is simulated)."""
    from repro.core.sweep import standard_strategies

    strategies = {
        name: factory
        for name, factory in standard_strategies().items()
        if name in _SWEEP_STRATEGIES
    }
    series = benchmark.pedantic(
        lambda: run_cache_sweep(
            context.program,
            cache_sizes=_SWEEP_SIZES,
            strategies=strategies,
            jobs=jobs,
            memory_access_time=6,
            input_bus_width=8,
        ),
        rounds=1,
        iterations=1,
    )
    points = sum(len(curve.cycles) for curve in series)
    assert points == len(_SWEEP_SIZES) * len(_SWEEP_STRATEGIES)
    benchmark.extra_info["points"] = points
    benchmark.extra_info["jobs"] = jobs
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["points_per_second"] = round(
            points / benchmark.stats.stats.mean, 3
        )
