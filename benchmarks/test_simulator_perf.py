"""Performance of the simulator itself (not a paper experiment).

Measures simulated-cycles-per-second for each fetch strategy and for
the functional simulator, so regressions in the simulator's own speed
are visible in benchmark history.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.simulator import simulate
from repro.cpu.functional import run_functional

CONFIGS = {
    "pipe-16-16": lambda: MachineConfig.pipe("16-16", 128, memory_access_time=6),
    "pipe-8-8-narrow": lambda: MachineConfig.pipe(
        "8-8", 32, memory_access_time=6, input_bus_width=4
    ),
    "conventional": lambda: MachineConfig.conventional(128, memory_access_time=6),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_cycle_simulation_speed(name, context, benchmark):
    config = CONFIGS[name]()
    result = benchmark.pedantic(
        lambda: simulate(config, context.program), rounds=1, iterations=1
    )
    assert result.halted
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["instructions"] = result.instructions


def test_functional_simulation_speed(context, benchmark):
    result = benchmark.pedantic(
        lambda: run_functional(context.program), rounds=1, iterations=1
    )
    assert result.halted
    benchmark.extra_info["instructions"] = result.instructions
