"""Cold multi-worker sweep: warm-fleet orchestration vs naive dispatch.

A figure-scale sweep fans ~46 points (five strategies x five cache
sizes x two memory speeds) over four freshly spawned workers.  Cold,
every worker used to pay the full codegen bill for every kernel family
it happened to touch — the naive scheduler scatters points across
workers, so with four workers each family compiles up to four times,
plus a per-program dispatch table re-derived from scratch in each
worker.

The warm-fleet stack attacks that bill twice, and this benchmark times
the three rungs separately on the same grid with byte-identical
results:

* ``naive`` — one point per pool task, no persistent artifacts
  (``REPRO_NO_AFFINITY=1`` + ``REPRO_NO_DISK_CODEGEN=1``): the
  pre-orchestration behaviour;
* ``affinity`` — config-affinity batches keep each kernel family on as
  few workers as possible, so a family compiles once per worker that
  actually serves it instead of once per worker that happens to meet
  it;
* ``affinity+disk`` — batches plus the persistent codegen artifact
  store: the first worker to compile a family publishes source and
  bytecode, every other worker (and every later batch) warm-starts
  from the artifact instead of regenerating and re-``compile()``-ing.

Target: ``affinity+disk`` finishes the cold sweep >= 1.4x faster than
``naive`` (makespan), and all three modes return results byte-identical
to the serial reference.  The table lands in
``benchmarks/results/cold_sweep.txt``.

The 1.4x target assumes the workers can actually run concurrently.  On
a single-core host the naive baseline degenerates into accidental
affinity — one worker drains the queue in long bursts, so families
rarely scatter — and both modes bottom out at the same serialized
simulation floor; the target scales down to 1.15x there (the measured
win is then batching + artifact reuse alone).  The published table
records the host parallelism next to the numbers.
"""

import os
import tempfile
import time
from pathlib import Path

from repro.core.compiled import clear_compile_cache
from repro.core.config import PIPE_CONFIGURATIONS, MachineConfig
from repro.core.parallel import simulate_many
from repro.kernels.suite import build_livermore_program

_JOBS = 4
_SIZES = (32, 64, 128, 256, 512)
_MEMORY_ACCESS_TIMES = (6, 16)
_ROUNDS = 3  # min-of-3 cold runs per mode (each round fully reset)

_MODES = (
    ("naive", {"REPRO_NO_AFFINITY": "1", "REPRO_NO_DISK_CODEGEN": "1"}),
    ("affinity", {"REPRO_NO_AFFINITY": "0", "REPRO_NO_DISK_CODEGEN": "1"}),
    ("affinity+disk", {"REPRO_NO_AFFINITY": "0", "REPRO_NO_DISK_CODEGEN": "0"}),
)


def _grid() -> list[MachineConfig]:
    """The figure-scale point grid, in sweep enumeration order."""
    configs = []
    for name in PIPE_CONFIGURATIONS:
        for access_time in _MEMORY_ACCESS_TIMES:
            for size in _SIZES:
                try:
                    configs.append(
                        MachineConfig.pipe(
                            name, size, memory_access_time=access_time
                        )
                    )
                except ValueError:
                    continue  # cache smaller than the line size
    for access_time in _MEMORY_ACCESS_TIMES:
        for size in _SIZES:
            configs.append(
                MachineConfig.conventional(size, memory_access_time=access_time)
            )
    return configs


def test_cold_sweep_orchestration(benchmark, results_dir):
    program = build_livermore_program(scale=0.05, loops=(3,))
    configs = _grid()

    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_NO_AFFINITY", "REPRO_NO_DISK_CODEGEN", "REPRO_CACHE_DIR")
    }

    def restore():
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    try:
        # The truth: a clean serial run, orchestration out of the picture.
        os.environ["REPRO_NO_AFFINITY"] = "1"
        os.environ["REPRO_NO_DISK_CODEGEN"] = "1"
        clear_compile_cache()
        reference = simulate_many(program, configs, jobs=1)

        makespans = {tag: float("inf") for tag, _env in _MODES}
        with tempfile.TemporaryDirectory(prefix="repro-cold-sweep-") as scratch:
            # Rounds interleave the modes (naive, affinity, disk, naive,
            # ...) so slow drift in background load biases no mode.
            for round_id in range(_ROUNDS):
                for tag, env in _MODES:
                    os.environ.update(env)
                    # a pristine artifact root per round keeps every
                    # round genuinely cold (no cross-round warm starts)
                    root = Path(scratch) / f"{tag}-{round_id}"
                    os.environ["REPRO_CACHE_DIR"] = str(root)
                    clear_compile_cache()  # parent caches cold too
                    start = time.perf_counter()
                    results = simulate_many(program, configs, jobs=_JOBS)
                    elapsed = time.perf_counter() - start
                    makespans[tag] = min(makespans[tag], elapsed)
                    assert results == reference, (
                        f"{tag}: parallel sweep diverged from the serial "
                        "reference"
                    )
    finally:
        restore()
        clear_compile_cache()

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cores = os.cpu_count() or 1
    target = 1.4 if cores >= 2 else 1.15
    speedup_affinity = makespans["naive"] / makespans["affinity"]
    speedup_full = makespans["naive"] / makespans["affinity+disk"]
    lines = [
        "Cold multi-worker sweep: warm-fleet orchestration vs naive dispatch",
        f"({len(configs)} points, {_JOBS} workers on {cores} core(s), "
        f"min of {_ROUNDS} cold runs per mode,",
        " fresh worker pools and artifact roots every round; results "
        "byte-identical",
        " to the serial reference in every mode)",
        "",
        f"{'mode':<16} {'makespan':>10} {'vs naive':>9}",
    ]
    for tag, _env in _MODES:
        lines.append(
            f"{tag:<16} {makespans[tag]:>9.3f}s "
            f"{makespans['naive'] / makespans[tag]:>8.2f}x"
        )
    lines += [
        "",
        f"affinity alone:  {speedup_affinity:.2f}x",
        f"affinity + disk: {speedup_full:.2f}x "
        f"(target >= {target}x at {cores} core(s); 1.4x with real "
        "worker parallelism)",
    ]
    text = "\n".join(lines) + "\n"
    print(f"\n{text}")
    (results_dir / "cold_sweep.txt").write_text(text)

    result = benchmark.pedantic(
        lambda: simulate_many(program, configs[:4], jobs=1)[0],
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["points"] = len(configs)
    benchmark.extra_info["jobs"] = _JOBS
    benchmark.extra_info["speedup_affinity"] = round(speedup_affinity, 2)
    benchmark.extra_info["speedup_full"] = round(speedup_full, 2)
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cores"] = cores

    assert speedup_full >= target, (
        f"warm-fleet orchestration delivered only {speedup_full:.2f}x over "
        f"the naive cold sweep (target >= {target}x on {cores} core(s))"
    )
