"""Regenerate Table II — the simulated IQ and IQB configurations."""

from _harness import once, publish

from repro.analysis.experiments import run_experiment
from repro.core.config import MachineConfig
from repro.core.simulator import simulate


def test_table2(context, results_dir, benchmark):
    report = run_experiment("table2", context)
    publish(results_dir, "table2", report)
    assert report.all_passed, report.render_checks()

    # Timing unit: one run of the default Table II machine (16-16).
    result = once(
        benchmark,
        lambda: simulate(MachineConfig.pipe("16-16", 128), context.program),
    )
    assert result.halted
