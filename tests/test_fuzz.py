"""The differential fuzz harness and the committed regression corpus.

``tests/corpus/`` holds minimized kernels pinned as permanent
regressions; every entry must stay byte-identical across the full
engine ladder on every fuzz configuration.  The harness itself (case
driver, shrinker, reproducer writing) is tested with injected
predicates so no real engine bug is needed to exercise the failure
path.
"""

import json
from pathlib import Path

import pytest

from repro.core import fuzz
from repro.core.fuzz import (
    FUZZ_CONFIGS,
    FuzzFailure,
    check_workload,
    run_corpus,
    run_fuzz,
    shrink_workload,
)
from repro.core.simulator import Simulator
from repro.kernels.generate import generate_workload
from repro.kernels.serialize import workload_from_json
from repro.kernels.suite import build_kernel_suite

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_PATHS = sorted(CORPUS_DIR.glob("*.json"))
CONFIG_NAMES = list(FUZZ_CONFIGS)


def test_corpus_is_populated():
    # The regression corpus is a deliverable: branchy control, reductions,
    # nested loops, and pointer-chasing each need a committed reproducer.
    assert len(CORPUS_PATHS) >= 5


@pytest.mark.parametrize(
    "corpus_path", CORPUS_PATHS, ids=[p.stem for p in CORPUS_PATHS]
)
@pytest.mark.parametrize("config_name", CONFIG_NAMES)
def test_corpus_entry_byte_identical(corpus_path, config_name):
    kernel, arrays, _metadata = workload_from_json(corpus_path.read_text())
    config = FUZZ_CONFIGS[config_name]()
    assert check_workload(kernel, arrays, config) == []


def test_corpus_pointer_chase_engages_replay():
    """The chase entry must actually reach the replay engine's steady
    state — otherwise it pins nothing about the backedge path."""
    kernel, arrays, _ = workload_from_json(
        (CORPUS_DIR / "pointer-chase.json").read_text()
    )
    suite = build_kernel_suite([kernel], arrays)
    simulator = Simulator(
        FUZZ_CONFIGS["pipe-16-16"](), suite.program, skip=True, replay=True
    )
    simulator.run()
    controller = simulator.replay_controller
    assert controller is not None
    assert controller.replayed_iterations > 0


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def test_fuzz_smoke_slice():
    # The tier-1 smoke slice: ten tiny seeds across the config rotation.
    report = run_fuzz(start_seed=0, count=10, budget="tiny")
    assert report.ok, report.summary()
    assert report.cases == 10
    assert "byte-identical" in report.summary()


def test_fuzz_rejects_unknown_config():
    with pytest.raises(ValueError, match="unknown fuzz config 'warp-drive'"):
        run_fuzz(count=1, configs=["warp-drive"])


def test_fuzz_rejects_unknown_budget():
    with pytest.raises(ValueError, match="unknown budget 'huge'"):
        run_fuzz(count=1, budget="huge")


def test_fuzz_failure_writes_minimized_reproducer(tmp_path, monkeypatch):
    # Force every case to "fail" so the reproducer path runs without a
    # real engine bug; shrinking is exercised separately below.
    monkeypatch.setattr(
        fuzz, "check_workload", lambda kernel, arrays, config, engines=None: ["forced divergence"]
    )
    report = run_fuzz(
        start_seed=3,
        count=1,
        budget="tiny",
        failures_dir=tmp_path,
        shrink=False,
    )
    assert not report.ok
    failure = report.failures[0]
    assert failure.seed == 3
    assert failure.problems == ["forced divergence"]
    path = Path(failure.reproducer_path)
    assert path.parent == tmp_path
    document = json.loads(path.read_text())
    assert document["seed"] == 3
    assert "forced divergence" in document["note"]
    # The written reproducer must itself be a loadable corpus entry.
    kernel, arrays, metadata = workload_from_json(path.read_text())
    assert kernel == generate_workload(3, "tiny").kernel
    assert metadata["seed"] == 3


def test_run_corpus_reports_failures(tmp_path, monkeypatch):
    source = (CORPUS_DIR / "reduction.json").read_text()
    (tmp_path / "reduction.json").write_text(source)
    monkeypatch.setattr(
        fuzz, "check_workload", lambda kernel, arrays, config, engines=None: ["forced divergence"]
    )
    report = run_corpus(tmp_path, configs=["pipe-16-16"])
    assert report.cases == 1
    assert not report.ok
    assert report.failures[0].reproducer_path == str(tmp_path / "reduction.json")


def test_run_corpus_rejects_empty_dir(tmp_path):
    with pytest.raises(ValueError, match="no corpus entries"):
        run_corpus(tmp_path)


def test_report_round_trips_to_dict():
    report = run_fuzz(start_seed=0, count=2, budget="tiny")
    payload = report.to_dict()
    assert payload["cases"] == 2
    assert payload["ok"] is True
    assert payload["failures"] == []
    failure = FuzzFailure(
        seed=9, budget="tiny", config_name="tib", problems=["x"]
    )
    assert failure.to_dict()["config"] == "tib"


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def test_shrink_reaches_minimal_statement():
    """With a predicate that only needs one marked statement, the
    shrinker must strip everything else and collapse the iteration
    count."""
    workload = generate_workload(1, "default")
    config = FUZZ_CONFIGS["pipe-16-16"]()

    from repro.kernels.dsl import IntScalarUpdate, Store

    def still_fails(kernel, arrays):
        # "The bug" lives in any float Store: shrinking may remove
        # everything else but must keep at least one.
        return any(
            isinstance(statement, Store)
            for statement in kernel.all_statements()
        )

    assert still_fails(workload.kernel, workload.arrays)
    kernel, arrays = shrink_workload(
        workload.kernel, list(workload.arrays), config, still_fails=still_fails
    )
    assert still_fails(kernel, arrays)
    assert kernel.iterations == 1
    stores = [
        s for s in kernel.all_statements() if isinstance(s, Store)
    ]
    assert len(stores) == 1
    # Nothing unrelated survives: every remaining statement is either the
    # pinned store or a block that (transitively) contains it.
    from repro.kernels.dsl import If, Loop

    for statement in kernel.statements:
        assert isinstance(statement, (Store, Loop, If))
    # Unused arrays are pruned down to what the kernel references.
    assert {decl.name for decl in arrays} >= kernel.referenced_arrays()


def test_shrink_result_still_fails_real_predicate():
    """Shrinking never 'fixes' the failure: the returned workload must
    satisfy the same predicate that drove the shrink."""
    workload = generate_workload(7, "tiny")
    config = FUZZ_CONFIGS["conventional-128"]()
    calls = []

    def still_fails(kernel, arrays):
        calls.append(1)
        return kernel.iterations > 1

    if workload.kernel.iterations <= 1:
        pytest.skip("seed produced a single-iteration kernel")
    kernel, _arrays = shrink_workload(
        workload.kernel, list(workload.arrays), config, still_fails=still_fails
    )
    assert kernel.iterations == 2  # minimal value still satisfying > 1
    assert calls  # the predicate, not check_workload, drove the shrink
