"""Tests of the assembled 14-loop benchmark suite."""

import math
import struct

import pytest

from repro.cpu.functional import FunctionalSimulator
from repro.kernels.loops import PAPER_INNER_LOOP_BYTES, make_kernels
from repro.kernels.reference import run_suite_reference
from repro.kernels.suite import build_livermore_suite


class TestStructure:
    def test_fourteen_kernels(self, tiny_suite):
        assert len(tiny_suite.kernels) == 14
        assert [k.number for k in tiny_suite.kernels] == list(range(1, 15))

    def test_markers_present(self, tiny_suite):
        for number in range(1, 15):
            assert tiny_suite.inner_loop_bytes(number) > 0

    def test_regions_cover_loops(self, tiny_suite):
        regions = tiny_suite.regions()
        assert len(regions) == 14
        for _label, begin, end in regions:
            assert 0 < begin < end < tiny_suite.program.memory_size

    def test_loops_laid_out_in_order(self, tiny_suite):
        regions = tiny_suite.regions()
        for (_l1, _b1, end1), (_l2, begin2, _e2) in zip(regions, regions[1:]):
            assert end1 <= begin2

    def test_inner_loop_sizes_independent_of_scale(self, tiny_suite, small_suite):
        """Iteration counts change; code footprints must not."""
        for number in range(1, 15):
            assert tiny_suite.inner_loop_bytes(number) == small_suite.inner_loop_bytes(
                number
            )

    def test_inner_loop_sizes_near_table1(self, tiny_suite):
        """Every loop within 2x of the paper's Table I footprint, and the
        crucial distribution property: about half fit in 128 bytes."""
        ours_fit = 0
        paper_fit = 0
        for number in range(1, 15):
            ours = tiny_suite.inner_loop_bytes(number)
            paper = PAPER_INNER_LOOP_BYTES[number]
            assert 0.5 <= ours / paper <= 2.0, (number, ours, paper)
            ours_fit += ours <= 128
            paper_fit += paper <= 128
        assert abs(ours_fit - paper_fit) <= 2

    def test_source_is_reassemblable(self, tiny_suite):
        from repro.asm import assemble

        program = assemble(tiny_suite.source)
        assert program.image == tiny_suite.program.image


class TestFunctionalCorrectness:
    def test_bit_exact_against_reference(self, tiny_suite):
        simulator = FunctionalSimulator(tiny_suite.program)
        simulator.run()
        reference = tiny_suite.initial_reference_arrays()
        scalars = run_suite_reference(tiny_suite.kernels, reference)

        for decl in tiny_suite.arrays:
            base = tiny_suite.array_base(decl.name)
            for j in range(decl.length):
                raw = bytes(simulator.memory[base + 4 * j : base + 4 * j + 4])
                if decl.kind == "float":
                    got = struct.unpack("<f", raw)[0]
                    want = reference[decl.name][j]
                    assert got == want or (
                        math.isnan(got) and math.isnan(want)
                    ), (decl.name, j, got, want)
                else:
                    assert int.from_bytes(raw, "little") == reference[decl.name][j]

        for kernel in tiny_suite.kernels:
            for position, name in enumerate(kernel.scalars):
                address = tiny_suite.scalar_result_address(kernel.label, position)
                got = struct.unpack(
                    "<f", bytes(simulator.memory[address : address + 4])
                )[0]
                assert got == scalars[kernel.label][name]

    def test_region_instruction_counts(self, tiny_suite):
        simulator = FunctionalSimulator(
            tiny_suite.program, regions=tiny_suite.regions()
        )
        result = simulator.run()
        for kernel in tiny_suite.kernels:
            counted = result.by_region[kernel.label]
            per_iteration = counted / kernel.iterations
            # every inner loop runs its body exactly `iterations` times
            assert counted > 0
            assert per_iteration == int(per_iteration), kernel.label


class TestCalibration:
    def test_full_scale_matches_paper_instruction_count(self):
        """Section 5: 'A total of 150,575 instructions are executed in a
        single run through the benchmark program.'  Ours must land within
        2% of that."""
        suite = build_livermore_suite(scale=1.0)
        result = FunctionalSimulator(suite.program).run()
        paper = 150_575
        assert abs(result.instructions - paper) / paper < 0.02

    def test_workload_is_data_heavy(self, small_suite):
        """The Livermore loops must 'generate a large number of data
        requests per inner loop' (section 5) — that is what stresses the
        I-fetch/D-fetch competition."""
        result = FunctionalSimulator(small_suite.program).run()
        data_requests = result.loads + result.stores
        assert data_requests / result.instructions > 0.3
        assert result.fpu_operations > 0

    def test_scale_parameter(self):
        small = make_kernels(scale=0.1)
        full = make_kernels(scale=1.0)
        for tiny, big in zip(small, full):
            assert tiny.iterations <= big.iterations
            assert tiny.statements == big.statements


class TestImageConstraints:
    def test_addresses_fit_displacements(self, tiny_suite):
        """Every data symbol must fit a 15-bit displacement."""
        for decl in tiny_suite.arrays:
            base = tiny_suite.array_base(decl.name)
            assert base + 4 * decl.length <= 0x7FFF

    def test_image_below_fpu_window(self):
        from repro.memory.fpu import FPU_BASE

        suite = build_livermore_suite(scale=1.0)
        assert suite.program.memory_size <= FPU_BASE


@pytest.mark.parametrize("number", range(1, 15))
def test_each_kernel_compiles(number):
    from repro.kernels.codegen import compile_kernel

    kernel = next(k for k in make_kernels(scale=0.05) if k.number == number)
    compiled = compile_kernel(kernel)
    assert compiled.body_instruction_count > 5
