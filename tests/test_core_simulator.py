"""Integration tests of the cycle-level simulator as a whole."""

import pytest

from repro.asm import assemble
from repro.core.config import FetchStrategy, MachineConfig
from repro.core.simulator import (
    DeadlockError,
    SimulationTimeout,
    Simulator,
    simulate,
)
from repro.cpu.functional import FunctionalSimulator
from repro.isa.encoding import InstructionFormat

LOOP = """
    li r1, 20
    la r2, data
    li r3, 0
    lbr b0, loop
loop:
    ldx r2, r3
    popq r4
    add r4, r4, r4
    stx r2, r3
    pushq r4
    addi r3, r3, 4
    subi r1, r1, 1
    pbrne b0, r1, 2
    nop
    nop
    halt
    .align 4
data:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
    .word 11, 12, 13, 14, 15, 16, 17, 18, 19, 20
"""


class TestDeterminism:
    def test_identical_runs(self):
        program = assemble(LOOP)
        config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
        first = simulate(config, program)
        second = simulate(config, program)
        assert first.cycles == second.cycles
        assert first.stalls == second.stalls
        assert first.memory.input_bus_bytes == second.memory.input_bus_bytes


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("strategy", ["pipe", "conventional"])
    def test_same_instruction_stream_and_memory(self, strategy):
        program = assemble(LOOP)
        functional = FunctionalSimulator(program)
        functional_result = functional.run()

        if strategy == "pipe":
            config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
        else:
            config = MachineConfig.conventional(128, memory_access_time=6)
        simulator = Simulator(config, program)
        timing_result = simulator.run()

        assert timing_result.instructions == functional_result.instructions
        assert timing_result.loads == functional_result.loads
        assert timing_result.stores == functional_result.stores
        assert bytes(simulator.engine.memory) == bytes(functional.memory)

    def test_timing_never_beats_one_ipc(self):
        program = assemble(LOOP)
        result = simulate(MachineConfig.pipe("16-16", 512,
                                             memory_access_time=1), program)
        assert result.cycles >= result.instructions


class TestQueueAccounting:
    def test_push_pop_balance(self):
        program = assemble(LOOP)
        result = simulate(MachineConfig.pipe("16-16", 128), program)
        for name in ("LAQ", "LDQ", "SAQ", "SDQ"):
            snapshot = result.queues[name]
            assert snapshot.pushes == snapshot.pops, name
        assert result.queues["LAQ"].pushes == result.loads
        assert result.queues["SAQ"].pushes == result.stores


class TestGuards:
    def test_timeout(self):
        program = assemble("loop: lbr b0, loop\npbra b0, 0\nhalt")
        config = MachineConfig.pipe("16-16", 512, max_cycles=2_000)
        with pytest.raises(SimulationTimeout):
            simulate(config, program)

    def test_starved_frontend_reports_deadlock_with_frontend_state(self):
        """A frontend that stops supplying instructions and stops asking
        for memory is a livelock: nothing moves, so the progress signature
        freezes and the run must die as a DeadlockError naming the
        frontend — not limp on to SimulationTimeout."""
        program = assemble("loop: lbr b0, loop\npbra b0, 0\nhalt")
        config = MachineConfig.pipe("16-16", 512, max_cycles=2_000)
        sim = Simulator(config, program)
        sim.DEADLOCK_CYCLES = 200
        sim.frontend.next_instruction = lambda: None
        sim.frontend.poll_requests = lambda now: []
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "PipeFetchUnit" in message
        assert "IQ=" in message

    def test_format_mismatch_rejected(self):
        program = assemble("halt", fmt=InstructionFormat.PARCEL)
        with pytest.raises(ValueError, match="assembled for"):
            Simulator(MachineConfig.pipe("16-16", 128), program)

    def test_parcel_format_runs(self):
        program = assemble(LOOP, fmt=InstructionFormat.PARCEL)
        config = MachineConfig.pipe(
            "16-16", 128, instruction_format=InstructionFormat.PARCEL
        )
        result = simulate(config, program)
        assert result.halted
        assert result.instructions > 20


class TestStrategySelection:
    def test_pipe_frontend_instantiated(self):
        from repro.frontend.pipe_fetch import PipeFetchUnit

        simulator = Simulator(MachineConfig.pipe("8-8", 64), assemble("halt"))
        assert isinstance(simulator.frontend, PipeFetchUnit)

    def test_conventional_frontend_instantiated(self):
        from repro.frontend.conventional import ConventionalFetchUnit

        simulator = Simulator(MachineConfig.conventional(64), assemble("halt"))
        assert isinstance(simulator.frontend, ConventionalFetchUnit)

    def test_strategy_enum_on_result(self):
        result = simulate(MachineConfig.conventional(64), assemble("halt"))
        assert result.config.fetch_strategy is FetchStrategy.CONVENTIONAL


class TestResultReporting:
    def test_summary_renders(self):
        result = simulate(MachineConfig.pipe("16-16", 128), assemble(LOOP))
        text = result.summary()
        assert "cycles" in text
        assert "icache" in text
        assert str(result.cycles) in text

    def test_rates(self):
        result = simulate(MachineConfig.pipe("16-16", 128), assemble(LOOP))
        assert 0 < result.ipc <= 1.0
        assert result.cpi == pytest.approx(1.0 / result.ipc)
