"""Tests of the deterministic fault-injection harness (repro.core.faults).

The last class is the resilience layer's acceptance test: a sweep with
every injector firing at rate 1.0 must complete unattended, record every
recovery, and produce cycle counts byte-identical to a clean, uncached
reference-engine run.
"""

import json
import os
import time

import pytest

from repro.core import faults
from repro.core.config import MachineConfig
from repro.core.faults import FAULT_KINDS, FaultPlan, InjectedFault
from repro.core.resilience import SweepSupervisor
from repro.core.simcache import SimulationCache
from repro.core.simulator import simulate
from repro.core.sweep import run_cache_sweep


def _pipe(**overrides) -> MachineConfig:
    return MachineConfig.pipe(
        "16-16", 128, memory_access_time=6, input_bus_width=8, **overrides
    )


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    """Every test starts disarmed and cannot leak a plan to later tests."""
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    yield
    faults.deactivate()


class TestFaultPlanParsing:
    def test_bare_seed_enables_every_injector(self):
        plan = FaultPlan.parse("42")
        assert plan.seed == 42
        assert all(plan.rate(kind) == 0.25 for kind in FAULT_KINDS)

    def test_keyed_spec_with_aliases(self):
        plan = FaultPlan.parse(
            "seed=7,kill=0.3,hang=0.1,corrupt=0.5,diverge=1,hang-seconds=2"
        )
        assert plan.seed == 7
        assert plan.worker_kill == 0.3
        assert plan.point_hang == 0.1
        assert plan.cache_corrupt == 0.5
        assert plan.replay_diverge == 1.0
        assert plan.hang_seconds == 2.0

    def test_long_names_accepted_too(self):
        plan = FaultPlan.parse("worker_kill=0.5,point_hang=0.25")
        assert plan.worker_kill == 0.5 and plan.point_hang == 0.25

    @pytest.mark.parametrize("spec", ["", "kill", "bogus=1", "seed=x"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_json_round_trip(self):
        plan = FaultPlan.parse("seed=9,kill=0.5,hang-seconds=1.5")
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestFiring:
    def test_decision_is_a_pure_function_of_seed_kind_key(self):
        a = FaultPlan(seed=3, worker_kill=0.5)
        b = FaultPlan(seed=3, worker_kill=0.5)
        keys = [f"key-{i}" for i in range(64)]
        assert [a.fires("worker_kill", k) for k in keys] == [
            b.fires("worker_kill", k) for k in keys
        ]

    def test_different_seeds_hit_different_points(self):
        keys = [f"key-{i}" for i in range(256)]
        hits = {
            seed: [
                FaultPlan(seed=seed, worker_kill=0.5).fires("worker_kill", k)
                for k in keys
            ]
            for seed in (1, 2)
        }
        assert hits[1] != hits[2]
        # ... and the rate is roughly honored
        assert 64 < sum(hits[1]) < 192

    def test_rate_bounds(self):
        assert not FaultPlan(worker_kill=0.0).fires("worker_kill", "k")
        assert FaultPlan(worker_kill=1.0).fires("worker_kill", "k")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().rate("meteor_strike")

    def test_fires_once_claims_the_marker_exactly_once(self, tmp_path):
        plan = FaultPlan(point_hang=1.0, scratch_dir=str(tmp_path))
        assert plan.fires_once("point_hang", "key-a")
        assert not plan.fires_once("point_hang", "key-a")
        assert plan.fires_once("point_hang", "key-b")

    def test_fires_once_is_inert_without_a_scratch_dir(self):
        plan = FaultPlan(point_hang=1.0)
        assert not plan.fires_once("point_hang", "key-a")


class TestActivation:
    def test_activate_round_trips_through_the_environment(self):
        armed = faults.activate(FaultPlan(seed=5, replay_diverge=0.5))
        assert faults.active_plan() == armed
        faults.deactivate()
        assert faults.active_plan() is None

    def test_activate_provisions_a_scratch_dir_for_once_kinds(self):
        armed = faults.activate(FaultPlan(seed=5, worker_kill=0.5))
        assert armed.scratch_dir is not None

    def test_no_scratch_dir_needed_for_replay_divergence(self):
        armed = faults.activate(FaultPlan(seed=5, replay_diverge=0.5))
        assert armed.scratch_dir is None

    def test_garbled_plan_injects_nothing(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "{not json")
        assert faults.active_plan() is None

    def test_activate_records_the_supervising_pid(self):
        armed = faults.activate(FaultPlan(seed=5, worker_kill=1.0))
        assert armed.host_pid == os.getpid()

    def test_process_fatal_injectors_stay_inert_in_the_supervisor(self):
        # The serial-fallback path runs points in the arming process;
        # a kill (os._exit) or an untimeboxed hang there would turn the
        # drill into the disaster.  Surviving these calls is the test.
        faults.activate(
            FaultPlan(seed=5, worker_kill=1.0, point_hang=1.0, hang_seconds=60)
        )
        start = time.monotonic()
        faults.maybe_kill_worker("some-point")
        faults.maybe_hang_point("some-point")
        assert time.monotonic() - start < 5.0
        # ... and the once-markers were NOT consumed, so a real worker
        # (different pid) would still see the faults.
        plan = faults.active_plan()
        assert plan.fires_once("worker_kill", "some-point")
        assert plan.fires_once("point_hang", "some-point")


class TestReplayDivergence:
    def test_injected_divergence_crashes_the_fast_path(self, tiny_program):
        faults.activate(FaultPlan(replay_diverge=1.0))
        with pytest.raises(InjectedFault, match="backedge"):
            simulate(_pipe(), tiny_program)

    def test_ladder_recovers_with_identical_numbers(self, tiny_program):
        from repro.core.resilience import FaultReport, ladder_simulate

        reference = simulate(_pipe(), tiny_program, skip=False, replay=False)
        faults.activate(FaultPlan(replay_diverge=1.0))
        report = FaultReport()
        result, rung = ladder_simulate(_pipe(), tiny_program, report=report)
        assert rung == "idle-skip"
        assert result.canonical_json() == reference.canonical_json()
        kinds = report.counts()
        # The divergence hook fires on both replay-enabled rungs
        # (compiled and replay) before idle-skip succeeds.
        assert kinds == {"engine_fault": 2, "degraded": 1}
        assert report.rungs == {"idle-skip": 1}


class TestCacheCorruption:
    def test_corrupted_store_is_quarantined_then_healed(
        self, tiny_program, tmp_path
    ):
        cache = SimulationCache(tmp_path)
        config = _pipe()
        reference = simulate(config, tiny_program)
        faults.activate(FaultPlan(cache_corrupt=1.0))
        cache.store(config, tiny_program, reference)  # truncated in place
        assert cache.lookup(config, tiny_program) is None
        assert cache.stats.quarantined == 1
        assert len(cache.quarantined_entries()) == 1
        # the once-marker is spent: the re-store survives and verifies
        cache.store(config, tiny_program, reference)
        assert cache.lookup(config, tiny_program) == reference


class TestInjectedSweepAcceptance:
    """The ISSUE's acceptance bar: everything injected, nothing wrong."""

    def test_fully_injected_sweep_is_byte_identical_to_reference(
        self, tiny_program, tmp_path
    ):
        strategies = {
            "PIPE 16-16": lambda size, **o: MachineConfig.pipe(
                "16-16", size, **o
            ),
            "conventional": lambda size, **o: MachineConfig.conventional(
                size, **o
            ),
        }
        memory = {"memory_access_time": 6, "input_bus_width": 8}

        # The clean truth: reference engine, no cache, no workers —
        # one result per sweep point, in the sweep's series order.
        reference = [
            simulate(
                factory(64, **memory), tiny_program, skip=False, replay=False
            ).canonical_json()
            for factory in strategies.values()
        ]

        faults.activate(
            FaultPlan(
                seed=7,
                worker_kill=1.0,
                point_hang=1.0,
                cache_corrupt=1.0,
                replay_diverge=1.0,
                hang_seconds=8.0,
            )
        )
        cache = SimulationCache(tmp_path / "cache")
        supervisor = SweepSupervisor(jobs=2, timeout=2.0, max_retries=4)
        injected = run_cache_sweep(
            tiny_program,
            cache_sizes=[64],
            strategies=strategies,
            cache=cache,
            supervisor=supervisor,
            **memory,
        )

        assert [
            s.results[0].canonical_json() for s in injected
        ] == reference
        counts = supervisor.report.counts()
        assert counts.get("worker_crash", 0) >= 1  # kill=1.0 broke the pool
        assert counts.get("degraded", 0) >= 2  # diverge=1.0 hit every point

        # Second pass over the (corrupted) cache: every lookup quarantines,
        # the points are re-simulated, and the numbers still match.
        cache2 = SimulationCache(tmp_path / "cache")
        supervisor2 = SweepSupervisor(jobs=2, timeout=2.0, max_retries=4)
        warm = run_cache_sweep(
            tiny_program,
            cache_sizes=[64],
            strategies=strategies,
            cache=cache2,
            supervisor=supervisor2,
            **memory,
        )
        assert [s.results[0].canonical_json() for s in warm] == reference
        assert cache2.stats.quarantined >= 1
        assert supervisor2.report.counts().get("cache_quarantine", 0) >= 1

        # Third pass: the corrupt once-markers are spent, so the re-stored
        # entries verify and the sweep is answered from the cache.
        cache3 = SimulationCache(tmp_path / "cache")
        final = run_cache_sweep(
            tiny_program,
            cache_sizes=[64],
            strategies=strategies,
            cache=cache3,
            supervisor=SweepSupervisor(jobs=1),
            **memory,
        )
        assert cache3.stats.hits == 2 and cache3.stats.quarantined == 0
        assert [s.results[0].canonical_json() for s in final] == reference


class TestSeededUniform:
    def test_deterministic_and_in_range(self):
        draws = [faults.seeded_uniform(7, "a", str(n)) for n in range(64)]
        assert draws == [faults.seeded_uniform(7, "a", str(n)) for n in range(64)]
        assert all(0.0 <= value < 1.0 for value in draws)

    def test_sensitive_to_every_part(self):
        base = faults.seeded_uniform(7, "kind", "key")
        assert base != faults.seeded_uniform(8, "kind", "key")
        assert base != faults.seeded_uniform(7, "kind", "other")
        assert base != faults.seeded_uniform(7, "other", "key")


class TestServiceInjectors:
    def setup_method(self):
        faults.deactivate()

    def teardown_method(self):
        faults.deactivate()

    def test_inert_without_a_plan(self):
        faults.maybe_trip_rung("compiled", "k")  # no raise
        assert not faults.queue_full_rejection("k")
        assert faults.slow_client_delay("k") == 0.0

    def test_trip_fires_per_plan_and_is_repeatable(self):
        faults.activate(FaultPlan(seed=3, breaker_trip=1.0))
        with pytest.raises(InjectedFault):
            faults.maybe_trip_rung("compiled", "k")
        with pytest.raises(InjectedFault):  # not once-only: every attempt
            faults.maybe_trip_rung("compiled", "k")

    def test_reference_rung_is_exempt_from_trips(self):
        faults.activate(FaultPlan(seed=3, breaker_trip=1.0))
        faults.maybe_trip_rung("reference", "k")  # the floor always holds

    def test_trip_rate_selects_points_by_hash(self):
        faults.activate(FaultPlan(seed=3, breaker_trip=0.5))
        outcomes = []
        for n in range(32):
            try:
                faults.maybe_trip_rung("compiled", f"key-{n}")
                outcomes.append(False)
            except InjectedFault:
                outcomes.append(True)
        assert any(outcomes) and not all(outcomes)

    def test_queue_full_rejection_follows_the_rate(self):
        faults.activate(FaultPlan(seed=3, queue_full=1.0))
        assert faults.queue_full_rejection("k")
        faults.deactivate()
        faults.activate(FaultPlan(seed=3, queue_full=0.0))
        assert not faults.queue_full_rejection("k")

    def test_slow_client_delay_uses_the_plan_seconds(self):
        faults.activate(FaultPlan(seed=3, slow_client=1.0, slow_seconds=0.25))
        assert faults.slow_client_delay("k") == 0.25

    def test_bare_seed_spec_enables_the_service_injectors_too(self):
        plan = FaultPlan.parse("42")
        assert plan.breaker_trip == 0.25
        assert plan.queue_full == 0.25
        assert plan.slow_client == 0.25

    def test_spec_keys_for_the_new_injectors(self):
        plan = FaultPlan.parse("seed=7,trip=0.5,qfull=0.2,slow=0.1,slow-seconds=0.3")
        assert plan.seed == 7
        assert plan.breaker_trip == 0.5
        assert plan.queue_full == 0.2
        assert plan.slow_client == 0.1
        assert plan.slow_seconds == 0.3

    def test_new_kinds_are_registered(self):
        assert {"breaker_trip", "queue_full", "slow_client"} <= set(FAULT_KINDS)
