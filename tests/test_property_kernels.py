"""Property test: random DSL kernels run identically everywhere.

Hypothesis generates small random kernels (random expression trees over
random arrays, scalars, and constants); each is compiled, assembled, and
run on the functional simulator *and* the cycle-level simulator, and
both must produce bit-identical memory against the reference
interpreter.  This hammers the compiler's operand scheduling (LDQ FIFO
discipline, scratch allocation, store pairing) far beyond the 14 fixed
loops.
"""

import math
import struct

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.simulator import Simulator
from repro.cpu.functional import FunctionalSimulator
from repro.kernels.codegen import CompileError, compile_kernel
from repro.kernels.dsl import (
    Affine,
    ArrayDecl,
    BinOp,
    ConstRef,
    Kernel,
    Load,
    ScalarRef,
    ScalarUpdate,
    Store,
)
from repro.kernels.reference import f32, run_kernel_reference
from repro.memory.fpu import FPU_BASE

ARRAYS = ("a", "b", "c")
ITERATIONS = 5
# Must cover the worst generated access: mult 2, offset 2 at i=4 -> 10.
ARRAY_LENGTH = 2 * (ITERATIONS - 1) + 2 + 2

# Values chosen to avoid overflow/NaN explosions over a few iterations.
safe_floats = st.floats(min_value=0.05, max_value=2.0, allow_nan=False)

affine = st.builds(
    Affine,
    mult=st.sampled_from((1, 1, 1, 2)),
    offset=st.integers(min_value=0, max_value=2),
)

loads = st.builds(Load, array=st.sampled_from(ARRAYS), index=affine)
consts = st.builds(ConstRef, name=st.sampled_from(("k0", "k1")))
scalars = st.builds(ScalarRef, name=st.just("s0"))
leaves = st.one_of(loads, loads, consts, scalars)


def binops(children):
    return st.builds(
        BinOp, op=st.sampled_from("+-*+-*/"), lhs=children, rhs=children
    )


expressions = st.recursive(leaves, binops, max_leaves=6)

statements = st.one_of(
    st.builds(
        Store, array=st.sampled_from(ARRAYS), index=affine, expr=expressions
    ),
    st.builds(ScalarUpdate, name=st.just("s0"), expr=expressions),
)


@st.composite
def kernels(draw):
    body = tuple(draw(st.lists(statements, min_size=1, max_size=3)))
    return Kernel(
        number=1,
        name="random",
        iterations=ITERATIONS,
        statements=body,
        consts={"k0": draw(safe_floats), "k1": draw(safe_floats)},
        scalars={"s0": draw(safe_floats)},
    )


def build_program(kernel, initial):
    compiled = compile_kernel(kernel)
    lines = [
        "        .entry start",
        "start:",
        f"        li r6, {FPU_BASE & 0xFFFF}",
        f"        lih r6, {FPU_BASE >> 16}",
    ]
    lines += compiled.text_lines
    lines.append("        halt")
    lines += compiled.data
    for name in ARRAYS:
        rendered = ", ".join(repr(v) for v in initial[name])
        lines.append("        .align 4")
        lines.append(f"{name}:")
        lines.append(f"        .float {rendered}")
    return assemble("\n".join(lines) + "\n")


def extract(memory, program, name):
    base = program.symbols[name]
    return [
        struct.unpack("<f", bytes(memory[base + 4 * j : base + 4 * j + 4]))[0]
        for j in range(ARRAY_LENGTH)
    ]


def same(left, right):
    return all(
        x == y or (math.isnan(x) and math.isnan(y)) for x, y in zip(left, right)
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(kernels(), st.lists(safe_floats, min_size=3, max_size=3))
def test_random_kernel_equivalence(kernel, seeds):
    # The DSL allows deeper trees than the register pool; skip those.
    # Every kernel that *compiles* must run correctly everywhere.
    try:
        build_program(kernel, {name: [0.5] * ARRAY_LENGTH for name in ARRAYS})
    except CompileError:
        return

    initial = {
        name: [f32(seed + 0.1 * j) for j in range(ARRAY_LENGTH)]
        for name, seed in zip(ARRAYS, seeds)
    }
    program = build_program(kernel, initial)

    reference = {name: list(values) for name, values in initial.items()}
    run_kernel_reference(kernel, reference)

    functional = FunctionalSimulator(program)
    functional.run()
    for name in ARRAYS:
        assert same(extract(functional.memory, program, name), reference[name])

    timing = Simulator(
        MachineConfig.pipe("16-16", 32, memory_access_time=6, input_bus_width=4),
        program,
    )
    timing.run()
    for name in ARRAYS:
        assert same(extract(timing.engine.memory, program, name), reference[name])
