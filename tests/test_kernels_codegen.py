"""Unit tests for the kernel compiler (DSL → PIPE assembly)."""

import pytest

from repro.asm import assemble
from repro.cpu.functional import FunctionalSimulator
from repro.kernels.codegen import CompileError, compile_kernel
from repro.kernels.dsl import (
    Affine,
    ArrayDecl,
    ConstRef,
    Indirect,
    Kernel,
    Load,
    LoadIndirect,
    ScalarRef,
    ScalarUpdate,
    Store,
    add,
    mul,
    sub,
)
from repro.kernels.reference import f32, run_kernel_reference
from repro.memory.fpu import FPU_BASE


def kernel_of(statements, **kwargs):
    defaults = dict(number=1, name="unit", iterations=5)
    defaults.update(kwargs)
    return Kernel(statements=tuple(statements), **defaults)


def build_and_run(kernel, arrays):
    """Assemble one kernel with its data and run it functionally.

    Returns (simulator, program, reference arrays after the reference
    interpreter ran over a copy of the same initial data).
    """
    compiled = compile_kernel(kernel)
    lines = [
        "        .entry start",
        "start:",
        f"        li r6, {FPU_BASE & 0xFFFF}",
        f"        lih r6, {FPU_BASE >> 16}",
    ]
    lines += compiled.text_lines
    lines.append("        halt")
    lines += compiled.data
    for decl in arrays:
        lines.append("        .align 4")
        lines.append(f"{decl.name}:")
        values = decl.initial_values()
        if decl.kind == "float":
            rendered = ", ".join(repr(float(v)) for v in values)
            lines.append(f"        .float {rendered}")
        else:
            rendered = ", ".join(str(int(v)) for v in values)
            lines.append(f"        .word {rendered}")
    program = assemble("\n".join(lines) + "\n")
    simulator = FunctionalSimulator(program)
    simulator.run()

    reference = {
        decl.name: (
            [f32(float(v)) for v in decl.initial_values()]
            if decl.kind == "float"
            else [int(v) for v in decl.initial_values()]
        )
        for decl in arrays
    }
    scalars = run_kernel_reference(kernel, reference)
    return simulator, program, reference, scalars


def read_float_array(simulator, program, name, length):
    import struct

    base = program.symbols[name]
    return [
        struct.unpack("<f", bytes(simulator.memory[base + 4 * j: base + 4 * j + 4]))[0]
        for j in range(length)
    ]


class TestCompiledSemantics:
    def test_simple_store(self):
        kernel = kernel_of(
            [Store("x", Affine(), add(Load("y"), Load("z")))], iterations=6
        )
        arrays = [
            ArrayDecl("x", 8, "float", (0.0,)),
            ArrayDecl("y", 8, "float", (1.5, 2.5)),
            ArrayDecl("z", 8, "float", (0.25,)),
        ]
        simulator, program, reference, _ = build_and_run(kernel, arrays)
        assert read_float_array(simulator, program, "x", 8) == reference["x"]

    def test_non_commutative_order(self):
        """a-b and a/b must not be swapped by operand scheduling."""
        kernel = kernel_of(
            [Store("x", Affine(), sub(Load("y"), mul(Load("z"), Load("z"))))],
            iterations=4,
        )
        arrays = [
            ArrayDecl("x", 6, "float", (0.0,)),
            ArrayDecl("y", 6, "float", (10.0, 20.0)),
            ArrayDecl("z", 6, "float", (2.0, 3.0)),
        ]
        simulator, program, reference, _ = build_and_run(kernel, arrays)
        assert read_float_array(simulator, program, "x", 6) == reference["x"]

    def test_deep_expression_spills_to_scratch(self):
        """Compound-compound nests exercise force-to-register paths."""
        y, z = Load("y"), Load("z")
        expr = add(add(mul(y, z), mul(z, y)), add(mul(y, y), mul(z, z)))
        kernel = kernel_of([Store("x", Affine(), expr)], iterations=3)
        arrays = [
            ArrayDecl("x", 4, "float", (0.0,)),
            ArrayDecl("y", 4, "float", (1.25, 0.5)),
            ArrayDecl("z", 4, "float", (0.75,)),
        ]
        simulator, program, reference, _ = build_and_run(kernel, arrays)
        assert read_float_array(simulator, program, "x", 4) == reference["x"]

    def test_scalar_accumulator(self):
        kernel = kernel_of(
            [ScalarUpdate("acc", add(ScalarRef("acc"), mul(Load("y"), Load("z"))))],
            iterations=6,
            scalars={"acc": 0.0},
        )
        arrays = [
            ArrayDecl("y", 8, "float", (0.5, 0.25)),
            ArrayDecl("z", 8, "float", (2.0,)),
        ]
        simulator, program, _reference, scalars = build_and_run(kernel, arrays)
        import struct

        address = program.symbols["ll1.result"]
        stored = struct.unpack(
            "<f", bytes(simulator.memory[address: address + 4])
        )[0]
        assert stored == scalars["acc"]

    def test_strided_access(self):
        kernel = kernel_of(
            [Store("x", Affine(), Load("y", Affine(mult=2)))], iterations=5
        )
        arrays = [
            ArrayDecl("x", 5, "float", (0.0,)),
            ArrayDecl("y", 10, "float", tuple(float(i) / 4 for i in range(10))),
        ]
        simulator, program, reference, _ = build_and_run(kernel, arrays)
        assert read_float_array(simulator, program, "x", 5) == reference["x"]

    def test_indirect_gather_and_scatter(self):
        pointer = Indirect("ix", Affine())
        kernel = kernel_of(
            [
                Store("x", Affine(), LoadIndirect("e", pointer)),
                Store("e", pointer, add(LoadIndirect("e", pointer), ConstRef("c"))),
            ],
            iterations=4,
            consts={"c": 0.5},
        )
        arrays = [
            ArrayDecl("x", 4, "float", (0.0,)),
            ArrayDecl("e", 8, "float", tuple(float(i) for i in range(8))),
            ArrayDecl("ix", 4, "int", (3, 0, 7, 3)),
        ]
        simulator, program, reference, _ = build_and_run(kernel, arrays)
        assert read_float_array(simulator, program, "x", 4) == reference["x"]
        assert read_float_array(simulator, program, "e", 8) == reference["e"]

    def test_constant_pool_path(self):
        """More constants than registers: the pool-base addressing."""
        consts = {f"c{i}": 0.1 * (i + 1) for i in range(6)}
        expr = Load("y")
        for name in consts:
            expr = add(expr, mul(ConstRef(name), Load("z")))
        kernel = kernel_of([Store("x", Affine(), expr)], iterations=3,
                           consts=consts)
        arrays = [
            ArrayDecl("x", 4, "float", (0.0,)),
            ArrayDecl("y", 4, "float", (1.0,)),
            ArrayDecl("z", 4, "float", (0.5, 0.75)),
        ]
        simulator, program, reference, _ = build_and_run(kernel, arrays)
        assert read_float_array(simulator, program, "x", 4) == reference["x"]


class TestShapeLimits:
    def test_loop_invariant_access_rejected(self):
        kernel = kernel_of([Store("x", Affine(), Load("y", Affine(mult=0)))])
        with pytest.raises(CompileError, match="mult=0"):
            compile_kernel(kernel)

    def test_too_many_strides_rejected(self):
        statements = [
            Store(
                "x",
                Affine(),
                add(
                    add(Load("y", Affine(mult=2)), Load("y", Affine(mult=3))),
                    add(
                        add(Load("y", Affine(mult=5)), Load("y", Affine(mult=7))),
                        Load("y", Affine(mult=11)),
                    ),
                ),
            )
        ]
        with pytest.raises(CompileError, match="strides|scalars|pool"):
            compile_kernel(kernel_of(statements))


class TestDelaySlots:
    def test_loop_ends_with_pbr_and_delay_slots(self):
        kernel = kernel_of(
            [Store("x", Affine(), add(Load("y"), Load("z")))], iterations=4
        )
        compiled = compile_kernel(kernel)
        body = compiled.loop_body
        pbr_lines = [line for line in body if line.startswith("pbrne")]
        assert len(pbr_lines) == 1
        delay = int(pbr_lines[0].rsplit(",", 1)[1])
        position = body.index(pbr_lines[0])
        assert len(body) - position - 1 == delay
        assert delay <= 7

    def test_induction_updates_in_delay_slots(self):
        kernel = kernel_of(
            [Store("x", Affine(), Load("y", Affine(mult=2)))], iterations=4
        )
        compiled = compile_kernel(kernel)
        body = compiled.loop_body
        pbr_index = next(
            index for index, line in enumerate(body) if line.startswith("pbrne")
        )
        tail = body[pbr_index + 1 :]
        assert any(line.startswith("addi r0, r0, 4") for line in tail)
        assert any(line.endswith(", 8") and line.startswith("addi") for line in tail)
