"""Unit tests for the external memory timing model."""

import pytest

from repro.memory.external import ExternalMemory
from repro.memory.requests import MemoryRequest, RequestKind


def make_request(kind=RequestKind.LOAD, address=0, size=4, seq=0, demand=True):
    return MemoryRequest(kind=kind, address=address, size=size, seq=seq, demand=demand)


class TestAcceptance:
    def test_ready_after_access_time(self):
        memory = ExternalMemory(access_time=6, pipelined=False)
        memory.begin_cycle(0)
        request = make_request()
        memory.accept(request, 0)
        assert request.ready_at == 6
        assert memory.ready_requests(5) == []
        assert memory.ready_requests(6) == [request]

    def test_non_pipelined_busy_until_delivered(self):
        memory = ExternalMemory(access_time=2, pipelined=False)
        memory.begin_cycle(0)
        memory.accept(make_request(), 0)
        memory.begin_cycle(1)
        assert not memory.can_accept(1)

    def test_one_acceptance_per_cycle_even_pipelined(self):
        memory = ExternalMemory(access_time=2, pipelined=True)
        memory.begin_cycle(0)
        memory.accept(make_request(seq=1), 0)
        assert not memory.can_accept(0)
        memory.begin_cycle(1)
        assert memory.can_accept(1)

    def test_pipelined_accepts_with_in_flight(self):
        memory = ExternalMemory(access_time=4, pipelined=True)
        for cycle in range(3):
            memory.begin_cycle(cycle)
            assert memory.can_accept(cycle)
            memory.accept(make_request(seq=cycle), cycle)
        assert len(memory.in_flight) == 3

    def test_over_acceptance_rejected(self):
        memory = ExternalMemory(access_time=1, pipelined=False)
        memory.begin_cycle(0)
        memory.accept(make_request(), 0)
        with pytest.raises(RuntimeError):
            memory.accept(make_request(), 0)

    def test_access_time_validated(self):
        with pytest.raises(ValueError):
            ExternalMemory(access_time=0, pipelined=False)


class TestCompletion:
    def test_read_completes_when_fully_delivered(self):
        memory = ExternalMemory(access_time=1, pipelined=False)
        completions = []
        request = make_request(size=8)
        request.on_complete = completions.append
        memory.begin_cycle(0)
        memory.accept(request, 0)
        request.delivered_bytes = 4
        memory.retire_finished(1)
        assert not request.completed
        request.delivered_bytes = 8
        memory.retire_finished(2)
        assert request.completed
        assert completions == [2]
        assert memory.in_flight == []

    def test_store_completes_after_access_time(self):
        memory = ExternalMemory(access_time=3, pipelined=False)
        request = make_request(kind=RequestKind.STORE)
        memory.begin_cycle(0)
        memory.accept(request, 0)
        memory.retire_finished(2)
        assert not request.completed
        memory.retire_finished(3)
        assert request.completed

    def test_store_never_offers_return_data(self):
        memory = ExternalMemory(access_time=1, pipelined=False)
        request = make_request(kind=RequestKind.STORE)
        memory.begin_cycle(0)
        memory.accept(request, 0)
        assert memory.ready_requests(10) == []

    def test_busy_cycle_accounting(self):
        memory = ExternalMemory(access_time=2, pipelined=False)
        memory.begin_cycle(0)
        memory.accept(make_request(kind=RequestKind.STORE), 0)
        memory.begin_cycle(1)
        memory.begin_cycle(2)
        assert memory.busy_cycles == 2
