"""Golden-trace regression tests.

Each test replays a tiny, fully deterministic kernel through one fetch
strategy with a JSONL trace sink and asserts the produced file is
**byte-identical** to the frozen golden under ``tests/goldens/``.  Any
change to event ordering, payload fields, cycle accounting, or JSON
serialisation shows up as a diff here before it can silently corrupt
downstream consumers (metrics aggregation, golden tooling, CI history).

Updating the goldens
--------------------
When a deliberate simulator or trace-format change invalidates them,
regenerate with::

    PYTHONPATH=src python -m pytest tests/test_trace_golden.py --update-goldens

then review the diff like any other code change (``git diff
tests/goldens``) — the diff *is* the behaviour change — and commit the
new files together with the change that caused them.

On mismatch the freshly generated trace is left next to the golden as
``<name>.actual.jsonl`` so CI can upload both for offline diffing.
"""

from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.simulator import simulate_traced

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Same tiny loop the simulator integration tests use: 20 iterations of
#: a load/queue/store body plus a branch — touches the cache, the data
#: queues, the FPU-free memory path, and a PBR redirect per iteration.
KERNEL = """
    li r1, 20
    la r2, data
    li r3, 0
    lbr b0, loop
loop:
    ldx r2, r3
    popq r4
    add r4, r4, r4
    stx r2, r3
    pushq r4
    addi r3, r3, 4
    subi r1, r1, 1
    pbrne b0, r1, 2
    nop
    nop
    halt
    .align 4
data:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
    .word 11, 12, 13, 14, 15, 16, 17, 18, 19, 20
"""

CONFIGS = {
    "pipe-16-16": lambda: MachineConfig.pipe("16-16", 128, memory_access_time=6),
    "conventional": lambda: MachineConfig.conventional(128, memory_access_time=6),
    "tib": lambda: MachineConfig.tib(memory_access_time=6),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_trace_matches_golden(name, tmp_path, update_goldens):
    program = assemble(KERNEL)
    config = CONFIGS[name]()
    golden = GOLDEN_DIR / f"{name}.jsonl"

    produced = tmp_path / f"{name}.jsonl"
    result = simulate_traced(config, program, trace_path=produced)
    assert result.halted
    actual = produced.read_bytes()

    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden.write_bytes(actual)
        return

    assert golden.is_file(), (
        f"missing golden {golden}; generate it with "
        "pytest tests/test_trace_golden.py --update-goldens"
    )
    expected = golden.read_bytes()
    if actual != expected:
        # Leave the regenerated trace beside the golden so a failing CI
        # run can upload both files as artifacts for offline diffing.
        (GOLDEN_DIR / f"{name}.actual.jsonl").write_bytes(actual)
    assert actual == expected, (
        f"trace for {name} diverged from {golden.name}; inspect "
        f"goldens/{name}.actual.jsonl, and if the change is deliberate "
        "rerun with --update-goldens"
    )


def test_goldens_are_committed():
    """Every parametrised config has a frozen golden in the repo."""
    missing = [
        name for name in CONFIGS if not (GOLDEN_DIR / f"{name}.jsonl").is_file()
    ]
    assert not missing, (
        f"goldens missing for {missing}; run "
        "pytest tests/test_trace_golden.py --update-goldens"
    )
