"""Tests of Hill's prefetch-policy family on the conventional cache."""

import pytest

from repro.asm import assemble
from repro.core.config import MachineConfig, PrefetchPolicy
from repro.core.simulator import Simulator, simulate
from repro.cpu.functional import FunctionalSimulator


def straight_line(count):
    return "\n".join(["nop"] * count) + "\nhalt"


def conventional(policy, cache=128, **overrides):
    return MachineConfig.conventional(
        cache, memory_access_time=6, prefetch_policy=policy, **overrides
    )


class TestSemanticsPreserved:
    @pytest.mark.parametrize("policy", list(PrefetchPolicy))
    def test_bit_exact(self, policy, tiny_program):
        functional = FunctionalSimulator(tiny_program)
        functional_result = functional.run()
        simulator = Simulator(conventional(policy), tiny_program)
        result = simulator.run()
        assert result.instructions == functional_result.instructions
        assert bytes(simulator.engine.memory) == bytes(functional.memory)


class TestPolicyBehaviour:
    def test_none_never_prefetches(self):
        result = simulate(
            conventional(PrefetchPolicy.NONE), assemble(straight_line(40))
        )
        assert result.fetch.prefetch_requests == 0
        assert result.fetch.demand_requests > 10

    def test_sequential_prefetch_volumes(self):
        """On straight-line code, ALWAYS and TAGGED both prefetch about
        once per block, ON_MISS only in the shadow of misses, NONE never."""
        program = assemble(straight_line(60))
        counts = {}
        for policy in PrefetchPolicy:
            result = simulate(conventional(policy), program)
            counts[policy] = result.fetch.prefetch_requests
        assert counts[PrefetchPolicy.NONE] == 0
        assert counts[PrefetchPolicy.ALWAYS] > 0
        assert abs(counts[PrefetchPolicy.ALWAYS] - counts[PrefetchPolicy.TAGGED]) <= 3
        assert counts[PrefetchPolicy.ON_MISS] <= counts[PrefetchPolicy.ALWAYS]

    def test_on_miss_prefetches_after_misses_only(self):
        program = assemble(straight_line(40))
        result = simulate(conventional(PrefetchPolicy.ON_MISS), program)
        assert 0 < result.fetch.prefetch_requests <= result.fetch.demand_requests

    def test_tagged_prefetches_once_per_block(self):
        """A cached loop re-references its blocks every iteration but a
        tagged block only triggers one prefetch until refilled — so the
        prefetch count must not grow with the iteration count."""

        def loop(iterations):
            return f"""
                li r1, {iterations}
                lbr b0, loop
                loop:
                subi r1, r1, 1
                pbrne b0, r1, 2
                nop
                nop
                halt
            """

        short = simulate(conventional(PrefetchPolicy.TAGGED), assemble(loop(10)))
        long = simulate(conventional(PrefetchPolicy.TAGGED), assemble(loop(40)))
        assert long.fetch.prefetch_requests == short.fetch.prefetch_requests


class TestHillsFinding:
    def test_always_prefetch_is_the_best_policy(self, tiny_program):
        """Section 4.1: 'Throughout his study, the always-prefetch
        strategy consistently provided the best performance.'"""
        cycles = {}
        for policy in PrefetchPolicy:
            cycles[policy] = simulate(conventional(policy), tiny_program).cycles
        best = min(cycles.values())
        assert cycles[PrefetchPolicy.ALWAYS] <= best * 1.01
        assert cycles[PrefetchPolicy.NONE] == max(cycles.values())

    def test_any_prefetch_beats_none(self, tiny_program):
        none = simulate(conventional(PrefetchPolicy.NONE), tiny_program).cycles
        for policy in (PrefetchPolicy.ALWAYS, PrefetchPolicy.TAGGED,
                       PrefetchPolicy.ON_MISS):
            assert simulate(conventional(policy), tiny_program).cycles < none
