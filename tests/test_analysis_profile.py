"""Tests of per-loop cycle attribution."""

import pytest

from repro.analysis.profile import profile_program, render_profile
from repro.core.config import MachineConfig
from repro.core.simulator import simulate


@pytest.fixture(scope="module")
def report(tiny_suite):
    config = MachineConfig.pipe("16-16", 64, memory_access_time=6)
    return profile_program(config, tiny_suite.program, tiny_suite.regions())


class TestAttribution:
    def test_cycles_partition_the_run(self, report):
        assert sum(loop.cycles for loop in report.loops) == report.total_cycles

    def test_total_matches_plain_simulation(self, report, tiny_suite):
        plain = simulate(
            MachineConfig.pipe("16-16", 64, memory_access_time=6),
            tiny_suite.program,
        )
        assert report.total_cycles == plain.cycles

    def test_every_loop_present(self, report):
        names = {loop.name for loop in report.loops}
        assert {f"ll{n}" for n in range(1, 15)} <= names
        assert "(outside)" in names

    def test_instruction_counts_match_functional(self, report, tiny_suite):
        from repro.cpu.functional import FunctionalSimulator

        functional = FunctionalSimulator(
            tiny_suite.program, regions=tiny_suite.regions()
        ).run()
        by_name = report.by_name()
        for name, count in functional.by_region.items():
            assert by_name[name].instructions == count

    def test_cpi_at_least_one(self, report):
        for loop in report.loops:
            if loop.instructions:
                assert loop.cpi >= 1.0, loop

    def test_outside_share_is_small(self, report):
        outside = report.by_name()["(outside)"]
        assert outside.cycles < report.total_cycles * 0.1


class TestBehaviour:
    def test_cache_sensitivity_follows_loop_footprint(self, tiny_suite):
        """Shrinking the cache from 512B to 32B hits hardest the loops
        that fit only the big cache (LL3, 64B inner loop).  LL8 (~800B)
        never fits either cache — it streams in both cases — so its CPI
        barely moves.  This is the knee-of-the-curve effect (section 6)
        seen per loop."""
        small = profile_program(
            MachineConfig.pipe("16-16", 32, memory_access_time=6),
            tiny_suite.program,
            tiny_suite.regions(),
        ).by_name()
        large = profile_program(
            MachineConfig.pipe("16-16", 512, memory_access_time=6),
            tiny_suite.program,
            tiny_suite.regions(),
        ).by_name()
        ll8_slowdown = small["ll8"].cpi / large["ll8"].cpi
        ll3_slowdown = small["ll3"].cpi / large["ll3"].cpi
        assert ll3_slowdown > ll8_slowdown
        assert ll3_slowdown > 1.2  # LL3 genuinely lost its cache
        assert ll8_slowdown < 1.2  # LL8 never had one to lose

    def test_render(self, report):
        text = render_profile(report)
        assert "ll1" in text and "CPI" in text and "total" in text


class TestCli:
    def test_profile_subcommand(self, capsys):
        from repro.cli import main

        assert main(["profile", "--scale", "0.03", "--cache", "64"]) == 0
        out = capsys.readouterr().out
        assert "cycle profile" in out
        assert "ll14" in out
