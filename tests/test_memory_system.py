"""Unit tests for bus arbitration in the memory system facade."""

import pytest

from repro.memory.fpu import FPU_RESULT, FPU_TRIGGER_MUL
from repro.memory.requests import (
    MemoryRequest,
    RequestKind,
    RequestPriority,
    acceptance_order,
    return_tier,
)
from repro.memory.system import MemorySystem


class OneShotSource:
    """A request source that offers a fixed queue of requests."""

    def __init__(self, requests):
        self.pending = list(requests)
        self.accepted = []

    def poll_requests(self, now):
        return self.pending[:1]

    def notify_accepted(self, request, now):
        self.pending.remove(request)
        self.accepted.append((request, now))


def load(seq, address=0x100):
    return MemoryRequest(kind=RequestKind.LOAD, address=address, size=4, seq=seq)


def ifetch(seq, demand=True, address=0x200, size=16):
    return MemoryRequest(
        kind=RequestKind.IFETCH, address=address, size=size, seq=seq, demand=demand
    )


def make_system(priority=RequestPriority.INSTRUCTION_FIRST, access_time=2,
                pipelined=False, width=8):
    return MemorySystem(
        access_time=access_time,
        pipelined=pipelined,
        input_bus_width=width,
        priority=priority,
    )


class TestAcceptanceOrder:
    def test_instruction_first(self):
        priority = RequestPriority.INSTRUCTION_FIRST
        demand = ifetch(5)
        prefetch = ifetch(1, demand=False)
        data = load(0)
        order = sorted([data, prefetch, demand],
                       key=lambda r: acceptance_order(r, priority))
        assert order == [demand, prefetch, data]

    def test_data_first(self):
        priority = RequestPriority.DATA_FIRST
        demand = ifetch(0)
        prefetch = ifetch(1, demand=False)
        data = load(5)
        order = sorted([prefetch, demand, data],
                       key=lambda r: acceptance_order(r, priority))
        assert order == [data, demand, prefetch]

    def test_age_breaks_ties(self):
        priority = RequestPriority.DATA_FIRST
        older, younger = load(1), load(2)
        order = sorted([younger, older],
                       key=lambda r: acceptance_order(r, priority))
        assert order == [older, younger]


class TestReturnTiers:
    def test_tiers(self):
        assert return_tier(load(0)) == 0
        assert return_tier(ifetch(0, demand=True)) == 0
        assert return_tier(ifetch(0, demand=False)) == 2

    def test_store_has_no_tier(self):
        store = MemoryRequest(kind=RequestKind.STORE, address=0, size=4, seq=0)
        with pytest.raises(ValueError):
            return_tier(store)


class TestOutputBus:
    def test_one_acceptance_per_cycle(self):
        system = make_system()
        source = OneShotSource([ifetch(0), load(1)])
        system.register_source(source)
        system.begin_cycle(0)
        system.end_cycle(0)
        assert len(source.accepted) == 1

    def test_priority_decides_winner(self):
        system = make_system(priority=RequestPriority.INSTRUCTION_FIRST)
        data_source = OneShotSource([load(0)])
        fetch_source = OneShotSource([ifetch(1)])
        system.register_source(data_source)
        system.register_source(fetch_source)
        system.begin_cycle(0)
        system.end_cycle(0)
        assert fetch_source.accepted and not data_source.accepted

    def test_blocked_target_lets_lower_priority_through(self):
        """With non-pipelined memory busy, an FPU store may still be
        accepted even if a higher-priority ifetch is waiting."""
        system = make_system(access_time=10)
        system.begin_cycle(0)
        system.end_cycle(0)
        fetch_source = OneShotSource([ifetch(0)])
        system.register_source(fetch_source)
        system.begin_cycle(1)
        system.end_cycle(1)  # accepted; memory now busy
        assert fetch_source.accepted
        fetch_source2 = OneShotSource([ifetch(2)])
        fpu_source = OneShotSource(
            [MemoryRequest(kind=RequestKind.STORE, address=FPU_TRIGGER_MUL,
                           size=4, seq=3, store_value=0)]
        )
        system.register_source(fetch_source2)
        system.register_source(fpu_source)
        system.begin_cycle(2)
        system.end_cycle(2)
        assert fpu_source.accepted
        assert not fetch_source2.accepted


class TestInputBus:
    def test_chunked_line_delivery(self):
        system = make_system(access_time=2, width=8)
        chunks = []
        request = ifetch(0, size=16)
        request.on_chunk = lambda off, n, now: chunks.append((off, n, now))
        source = OneShotSource([request])
        system.register_source(source)
        for now in range(8):
            system.begin_cycle(now)
            system.end_cycle(now)
        # accepted at 0, ready at 2: transfers of 8 bytes at cycles 2, 3
        assert chunks == [(0, 8, 2), (8, 8, 3)]
        assert request.completed

    def test_narrow_bus_doubles_transfers(self):
        system = make_system(access_time=1, width=4)
        chunks = []
        request = ifetch(0, size=16)
        request.on_chunk = lambda off, n, now: chunks.append((off, n))
        system.register_source(OneShotSource([request]))
        for now in range(8):
            system.begin_cycle(now)
            system.end_cycle(now)
        assert chunks == [(0, 4), (4, 4), (8, 4), (12, 4)]

    def test_demand_return_beats_prefetch(self):
        system = make_system(access_time=1, pipelined=True, width=8)
        deliveries = []
        prefetch = ifetch(0, demand=False, size=8, address=0x40)
        demand = load(1)
        prefetch.on_chunk = lambda off, n, now: deliveries.append(("prefetch", now))
        demand.on_chunk = lambda off, n, now: deliveries.append(("load", now))
        system.register_source(OneShotSource([prefetch]))
        system.register_source(OneShotSource([demand]))
        # both accepted in consecutive cycles (one output bus)
        for now in range(6):
            system.begin_cycle(now)
            system.end_cycle(now)
        # prefetch accepted at 0 (ready at 1), load accepted at 1 (ready 2).
        # At cycle 2 both have data: the load (tier 0) wins the bus.
        assert ("load", 2) in deliveries
        prefetch_times = [t for kind, t in deliveries if kind == "prefetch"]
        assert min(prefetch_times) > 2 or prefetch_times[0] == 1

    def test_one_transfer_per_cycle(self):
        system = make_system(access_time=1, pipelined=True)
        times = []
        first, second = load(0), load(1, address=0x300)
        first.on_chunk = lambda off, n, now: times.append(now)
        second.on_chunk = lambda off, n, now: times.append(now)
        system.register_source(OneShotSource([first]))
        system.register_source(OneShotSource([second]))
        for now in range(6):
            system.begin_cycle(now)
            system.end_cycle(now)
        assert len(times) == len(set(times))  # never two in one cycle


class TestFpuPath:
    def test_fpu_result_between_demand_and_prefetch(self):
        """FPU results rank below demand loads but above prefetches."""
        system = make_system(access_time=1, pipelined=True, width=8)
        order = []
        # Start an FPU op completing at ~4.
        trigger = MemoryRequest(kind=RequestKind.STORE, address=FPU_TRIGGER_MUL,
                                size=4, seq=0, store_value=0)
        fpu_load = MemoryRequest(kind=RequestKind.LOAD, address=FPU_RESULT,
                                 size=4, seq=1)
        fpu_load.on_chunk = lambda off, n, now: order.append(("fpu", now))
        prefetch = ifetch(2, demand=False, size=8)
        prefetch.on_chunk = lambda off, n, now: order.append(("prefetch", now))
        # Delay the prefetch's readiness so it conflicts with the FPU result.
        sources = [OneShotSource([trigger]), OneShotSource([fpu_load])]
        for source in sources:
            system.register_source(source)
        late = OneShotSource([])
        system.register_source(late)
        for now in range(3):
            system.begin_cycle(now)
            system.end_cycle(now)
        late.pending = [prefetch]
        for now in range(3, 10):
            system.begin_cycle(now)
            system.end_cycle(now)
        fpu_time = [t for kind, t in order if kind == "fpu"][0]
        prefetch_time = [t for kind, t in order if kind == "prefetch"][0]
        assert fpu_time < prefetch_time

    def test_drained(self):
        system = make_system()
        assert system.drained
        source = OneShotSource([load(0)])
        system.register_source(source)
        system.begin_cycle(0)
        system.end_cycle(0)
        assert not system.drained
        for now in range(1, 6):
            system.begin_cycle(now)
            system.end_cycle(now)
        assert system.drained


class TestStats:
    def test_acceptance_counters(self):
        system = make_system(pipelined=True)
        requests = [
            load(0),
            MemoryRequest(kind=RequestKind.STORE, address=0x10, size=4, seq=1,
                          store_value=9),
            ifetch(2, demand=True),
            ifetch(3, demand=False, address=0x80),
        ]
        system.register_source(OneShotSource(requests))
        for now in range(20):
            system.begin_cycle(now)
            system.end_cycle(now)
        stats = system.stats
        assert stats.loads_accepted == 1
        assert stats.stores_accepted == 1
        assert stats.ifetch_demand_accepted == 1
        assert stats.ifetch_prefetch_accepted == 1
        assert stats.input_bus_bytes >= 4 + 16 + 16
