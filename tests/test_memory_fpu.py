"""Unit + property tests for the FPU semantic core."""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.fpu import (
    FPU_BASE,
    FPU_OPERAND_A,
    FPU_RESULT,
    FPU_SIZE,
    FPU_TRIGGER_ADD,
    FPU_TRIGGER_DIV,
    FPU_TRIGGER_MUL,
    FPU_TRIGGER_SUB,
    FpuCore,
    FpuLatencies,
    bits_to_float,
    float32_op,
    float_to_bits,
    is_fpu_address,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestBitConversions:
    @given(finite_floats)
    def test_roundtrip(self, value):
        assert bits_to_float(float_to_bits(value)) == value

    def test_known_patterns(self):
        assert float_to_bits(1.0) == 0x3F800000
        assert float_to_bits(-2.0) == 0xC0000000
        assert bits_to_float(0x40490FDB) == pytest.approx(math.pi, rel=1e-6)

    def test_overflow_becomes_infinity(self):
        assert math.isinf(bits_to_float(float_to_bits(1e300)))
        assert bits_to_float(float_to_bits(-1e300)) == -math.inf


class TestFloat32Ops:
    @given(finite_floats, finite_floats)
    def test_matches_struct_rounding(self, a, b):
        """Each op equals float64 math rounded once to float32."""
        bits = float32_op("add", float_to_bits(a), float_to_bits(b))
        want = a + b
        try:
            expected = struct.unpack("<f", struct.pack("<f", want))[0]
        except OverflowError:  # f32 + f32 can exceed f32 max → IEEE inf
            expected = math.copysign(math.inf, want)
        result = bits_to_float(bits)
        assert result == expected or (math.isnan(result) and math.isnan(expected))

    @given(finite_floats, finite_floats)
    def test_mul(self, a, b):
        bits = float32_op("mul", float_to_bits(a), float_to_bits(b))
        packed = struct.pack("<f", a)
        a32 = struct.unpack("<f", packed)[0]
        b32 = struct.unpack("<f", struct.pack("<f", b))[0]
        want = a32 * b32
        try:
            expected = struct.unpack("<f", struct.pack("<f", want))[0]
        except OverflowError:
            expected = math.copysign(math.inf, want)
        got = bits_to_float(bits)
        assert got == expected or (math.isnan(got) and math.isnan(expected))

    def test_sub(self):
        bits = float32_op("sub", float_to_bits(5.5), float_to_bits(2.25))
        assert bits_to_float(bits) == 3.25

    def test_div(self):
        bits = float32_op("div", float_to_bits(1.0), float_to_bits(4.0))
        assert bits_to_float(bits) == 0.25

    def test_div_by_zero_is_signed_infinity(self):
        assert bits_to_float(
            float32_op("div", float_to_bits(1.0), float_to_bits(0.0))
        ) == math.inf
        assert bits_to_float(
            float32_op("div", float_to_bits(-1.0), float_to_bits(0.0))
        ) == -math.inf

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(
            bits_to_float(float32_op("div", float_to_bits(0.0), float_to_bits(0.0)))
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            float32_op("pow", 0, 0)


class TestAddressMap:
    def test_window(self):
        assert is_fpu_address(FPU_BASE)
        assert is_fpu_address(FPU_RESULT)
        assert not is_fpu_address(FPU_BASE - 4)
        assert not is_fpu_address(FPU_BASE + FPU_SIZE)

    def test_trigger_addresses_distinct(self):
        triggers = {FPU_TRIGGER_ADD, FPU_TRIGGER_SUB, FPU_TRIGGER_MUL,
                    FPU_TRIGGER_DIV, FPU_OPERAND_A, FPU_RESULT}
        assert len(triggers) == 6


class TestFpuCore:
    def test_store_pair_multiplies(self):
        core = FpuCore()
        core.write(FPU_OPERAND_A, float_to_bits(3.0))
        core.write(FPU_TRIGGER_MUL, float_to_bits(7.0))
        assert bits_to_float(core.read(FPU_RESULT)) == 21.0

    def test_results_fifo_ordered(self):
        core = FpuCore()
        core.write(FPU_OPERAND_A, float_to_bits(1.0))
        core.write(FPU_TRIGGER_ADD, float_to_bits(1.0))  # 2.0
        core.write(FPU_OPERAND_A, float_to_bits(10.0))
        core.write(FPU_TRIGGER_SUB, float_to_bits(4.0))  # 6.0
        assert bits_to_float(core.read_result()) == 2.0
        assert bits_to_float(core.read_result()) == 6.0

    def test_operand_a_persists_across_ops(self):
        core = FpuCore()
        core.write(FPU_OPERAND_A, float_to_bits(8.0))
        core.write(FPU_TRIGGER_MUL, float_to_bits(2.0))
        core.write(FPU_TRIGGER_MUL, float_to_bits(3.0))
        assert bits_to_float(core.read_result()) == 16.0
        assert bits_to_float(core.read_result()) == 24.0

    def test_read_without_result_rejected(self):
        with pytest.raises(RuntimeError):
            FpuCore().read_result()

    def test_unmapped_store_rejected(self):
        with pytest.raises(ValueError):
            FpuCore().write(FPU_BASE + 0x14, 0)

    def test_unmapped_load_rejected(self):
        with pytest.raises(ValueError):
            FpuCore().read(FPU_BASE)

    def test_operation_counter(self):
        core = FpuCore()
        core.write(FPU_OPERAND_A, 0)
        assert core.operations_started == 0
        core.write(FPU_TRIGGER_ADD, 0)
        assert core.operations_started == 1
        assert core.last_operation == "add"


class TestLatencies:
    def test_paper_multiply_latency(self):
        assert FpuLatencies().mul == 4  # fixed by the paper (section 5)

    def test_lookup(self):
        latencies = FpuLatencies(add=2, sub=3, mul=4, div=20)
        assert latencies.latency("div") == 20
