"""Tests for the claim checkers, using synthetic sweep series."""

from repro.analysis.claims import (
    ClaimCheck,
    by_label,
    check_figure4a,
    check_figure4b,
    check_figure5,
    check_figure6,
    check_headline,
    check_line_size_reversal,
)
from repro.core.sweep import SweepSeries

SIZES = [32, 64, 128, 256, 512]


def series(values_by_label):
    return [
        SweepSeries(label, SIZES[: len(values)], list(values))
        for label, values in values_by_label.items()
    ]


def pipe_wins():
    """Synthetic data where every PIPE config beats conventional."""
    return series(
        {
            "PIPE 8-8": [900, 800, 700, 600, 550],
            "PIPE 16-16": [700, 650, 600, 560, 540],
            "PIPE 16-32": [720, 660, 610, 565, 545],
            "PIPE 32-32": [740, 680, 615, 570, 548],
            "conventional": [1500, 1200, 900, 700, 600],
        }
    )


def conventional_wins_somewhere():
    data = pipe_wins()
    by = by_label(data)
    by["conventional"].cycles[0] = 850  # beats PIPE 8-8 at 32B
    return data


class TestFigure4Checks:
    def test_4a_requires_a_conventional_win(self):
        passing = check_figure4a(conventional_wins_somewhere())
        assert all(check.passed for check in passing)
        failing = check_figure4a(pipe_wins())
        assert not all(check.passed for check in failing)

    def test_4b_flatness(self):
        flat = series(
            {
                "PIPE 8-8": [520, 515, 510, 505, 500],
                "PIPE 16-16": [525, 515, 510, 505, 500],
                "PIPE 16-32": [800, 700, 600, 550, 520],
                "PIPE 32-32": [820, 720, 620, 560, 525],
                "conventional": [900, 800, 700, 600, 520],
            }
        )
        checks = check_figure4b(flat)
        assert all(check.passed for check in checks)

    def test_4b_fails_on_steep_curves(self):
        steep = pipe_wins()
        checks = check_figure4b(steep)
        assert not all(check.passed for check in checks)


class TestFigure5Checks:
    def test_all_pipe_better(self):
        checks = check_figure5(pipe_wins())
        assert all(check.passed for check in checks)

    def test_detects_a_loss(self):
        checks = check_figure5(conventional_wins_somewhere())
        assert not all(check.passed for check in checks)

    def test_bus_sensitivity(self):
        wide = pipe_wins()
        narrow = series(
            {
                "PIPE 8-8": [1000, 880, 770, 660, 605],
                "PIPE 16-16": [770, 715, 660, 615, 595],
                "PIPE 16-32": [790, 730, 670, 620, 600],
                "PIPE 32-32": [815, 750, 680, 630, 605],
                "conventional": [2500, 1900, 1400, 1000, 800],
            }
        )
        checks = check_figure5(wide, series_narrow_bus=narrow)
        sensitivity = [c for c in checks if "sensitive" in c.claim][0]
        assert sensitivity.passed


class TestFigure6Checks:
    def test_pipelining_improvement_required(self):
        base = pipe_wins()
        better = series(
            {
                label: [int(v * 0.8) for v in curve.cycles]
                for label, curve in by_label(base).items()
                for curve in [curve]
            }
        )
        checks = check_figure6(base, better)
        assert checks[0].passed

    def test_regression_detected(self):
        base = pipe_wins()
        worse = series(
            {
                label: [v + 50 for v in curve.cycles]
                for label, curve in by_label(base).items()
            }
        )
        checks = check_figure6(base, worse)
        assert not checks[0].passed


class TestHeadline:
    def test_speedup_measured_at_32_bytes(self):
        checks = check_headline(pipe_wins())
        assert checks[0].passed  # 1500/700 > 1.5
        modest = series(
            {
                "PIPE 8-8": [1400, 800, 700, 600, 550],
                "PIPE 16-16": [1450, 650, 600, 560, 540],
                "PIPE 16-32": [1430, 660, 610, 565, 545],
                "PIPE 32-32": [1460, 680, 615, 570, 548],
                "conventional": [1500, 1200, 900, 700, 600],
            }
        )
        assert not check_headline(modest)[0].passed


class TestLineSizeReversal:
    def test_reversal(self):
        fast = series(
            {
                "PIPE 8-8": [500, 480, 460, 450, 445],
                "PIPE 16-16": [520, 500, 470, 455, 450],
                "PIPE 16-32": [560, 530, 480, 460, 452],
                "PIPE 32-32": [570, 540, 485, 462, 455],
                "conventional": [530, 510, 480, 460, 450],
            }
        )
        slow = pipe_wins()  # 16-16 dominates there
        checks = check_line_size_reversal(fast, slow)
        assert all(check.passed for check in checks)


class TestClaimCheck:
    def test_str_shows_status(self):
        passing = ClaimCheck("f", "works", True, "detail")
        failing = ClaimCheck("f", "works", False, "detail")
        assert "PASS" in str(passing)
        assert "FAIL" in str(failing)
