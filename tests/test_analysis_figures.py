"""Tests for figure specifications and rendering."""

import pytest

from repro.analysis.figures import (
    FIGURES,
    ascii_plot,
    render_figure,
    run_figure,
)
from repro.core.sweep import SweepSeries


class TestSpecs:
    def test_all_panels_present(self):
        assert set(FIGURES) == {"4a", "4b", "5a", "5b", "6a", "6b"}

    @pytest.mark.parametrize(
        "panel,access,bus,pipelined",
        [
            ("4a", 1, 4, False),
            ("4b", 1, 8, False),
            ("5a", 6, 4, False),
            ("5b", 6, 8, False),
            ("6a", 6, 8, False),
            ("6b", 6, 8, True),
        ],
    )
    def test_parameters_match_paper(self, panel, access, bus, pipelined):
        spec = FIGURES[panel]
        assert spec.memory_access_time == access
        assert spec.input_bus_width == bus
        assert spec.memory_pipelined == pipelined

    def test_6a_equals_5b_parameters(self):
        """Figure 6a is Figure 5b on a different scale (section 6)."""
        a, b = FIGURES["6a"], FIGURES["5b"]
        assert a.overrides() == b.overrides()

    def test_titles(self):
        assert "Figure 4a" in FIGURES["4a"].title
        assert "pipelined" in FIGURES["6b"].title


class TestRunFigure:
    def test_runs_sweep(self, tiny_program):
        series = run_figure("4b", tiny_program, cache_sizes=(32, 128))
        assert len(series) == 5
        labels = [curve.label for curve in series]
        assert "conventional" in labels


def sample_series():
    return [
        SweepSeries("PIPE 8-8", [32, 64, 128], [500, 400, 350]),
        SweepSeries("conventional", [32, 64, 128], [900, 600, 500]),
    ]


class TestRendering:
    def test_ascii_plot(self):
        plot = ascii_plot(sample_series(), [32, 64, 128])
        assert "o PIPE 8-8" in plot
        assert "x conventional" in plot
        assert "900" in plot and "350" in plot

    def test_ascii_plot_empty(self):
        assert ascii_plot([], [32]) == "(no data)"

    def test_render_figure_with_table(self):
        text = render_figure("5b", sample_series(), [32, 64, 128], plot=False)
        assert "Figure 5b" in text
        assert "PIPE 8-8" in text

    def test_render_figure_with_plot(self):
        text = render_figure("5b", sample_series(), [32, 64, 128], plot=True)
        assert "cache sizes: 32 64 128" in text
