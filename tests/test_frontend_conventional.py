"""Behavioural tests of the conventional always-prefetch fetch unit."""

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.simulator import Simulator, simulate


def straight_line(count):
    return "\n".join(["nop"] * count) + "\nhalt"


def run(source, config):
    return simulate(config, assemble(source))


class TestAlwaysPrefetch:
    def test_prefetches_on_every_reference(self):
        """Sequential code: nearly every instruction is covered by a
        prefetch, so demand misses stay near the pipeline startup."""
        result = run(
            straight_line(50),
            MachineConfig.conventional(512, memory_access_time=1),
        )
        # an 8-byte bus covers two instructions per prefetch, and fetch
        # work stops at HALT, so ~half the instruction count is expected
        assert result.fetch.prefetch_requests >= 20
        assert result.fetch.demand_requests <= 5

    def test_prefetch_crosses_line_boundaries(self):
        """Hill's model prefetches 'even if this address maps into the
        next cache line' — so sequential flow never demand-misses at
        line boundaries once the stream is ahead."""
        result = run(
            straight_line(64),
            MachineConfig.conventional(512, memory_access_time=1, line_size=16),
        )
        assert result.cycles <= 65 * 1.2 + 10

    def test_one_outstanding_request(self):
        """A demand miss must wait for an in-flight prefetch to finish
        (one request at a time), which hurts after taken branches."""
        source = """
            lbr b0, target
            pbra b0, 2
            nop
            nop
            .org 0x200
            target:
            halt
        """
        program = assemble(source)
        simulator = Simulator(
            MachineConfig.conventional(128, memory_access_time=6), program
        )
        result = simulator.run()
        assert result.halted
        # the fetched-but-wrong prefetch of the fall-through path cannot
        # overlap the demand fetch of the target
        assert result.stalls["frontend_empty"] >= 6

    def test_bus_width_extends_fill(self):
        """With an 8-byte bus a single request fills two sub-blocks, so
        wide-bus runs need roughly half the requests."""
        narrow = run(
            straight_line(64),
            MachineConfig.conventional(512, memory_access_time=1, input_bus_width=4),
        )
        wide = run(
            straight_line(64),
            MachineConfig.conventional(512, memory_access_time=1, input_bus_width=8),
        )
        narrow_requests = (
            narrow.fetch.demand_requests + narrow.fetch.prefetch_requests
        )
        wide_requests = wide.fetch.demand_requests + wide.fetch.prefetch_requests
        assert wide_requests < narrow_requests * 0.7
        assert wide.cycles <= narrow.cycles

    def test_promotion_of_caught_up_prefetch(self):
        result = run(
            straight_line(80),
            MachineConfig.conventional(512, memory_access_time=6, input_bus_width=4),
        )
        assert result.fetch.prefetch_promotions > 0


class TestCacheBehaviour:
    def test_loop_capture(self):
        source = """
            li r1, 30
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 2
            nop
            nop
            halt
        """
        result = run(source, MachineConfig.conventional(128, memory_access_time=6))
        assert result.cache.misses <= 8
        assert result.halted

    def test_redirect_follows_pc(self):
        source = """
            li r1, 0
            lbr b0, far
            pbreq b0, r1, 1
            nop
            nop
            far:
            halt
        """
        program = assemble(source)
        simulator = Simulator(
            MachineConfig.conventional(512, memory_access_time=1), program
        )
        result = simulator.run()
        assert simulator.frontend.stats.redirects == 1
        assert result.instructions == 5

    def test_data_priority_is_the_default(self):
        from repro.memory.requests import RequestPriority

        config = MachineConfig.conventional(128)
        assert config.priority is RequestPriority.DATA_FIRST
