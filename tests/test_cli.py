"""Tests for the repro-sim command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands(self):
        parser = build_parser()
        for argv in (
            ["run", "--cache", "64"],
            ["table", "1"],
            ["figure", "5b"],
            ["experiment", "table2"],
            ["report"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_bad_panel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "7a"])

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_table1_tiny(self, capsys):
        assert main(["table", "1", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "paper" in out

    def test_run_pipe(self, capsys):
        code = main(
            ["run", "--scale", "0.03", "--cache", "64", "--access", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "icache" in out

    def test_run_conventional(self, capsys):
        code = main(
            [
                "run",
                "--scale",
                "0.03",
                "--strategy",
                "conventional",
                "--cache",
                "64",
            ]
        )
        assert code == 0
        assert "conventional" in capsys.readouterr().out

    def test_figure_csv(self, capsys):
        code = main(
            [
                "figure",
                "4b",
                "--scale",
                "0.03",
                "--sizes",
                "32",
                "128",
                "--csv",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("strategy,32,128")
        assert "conventional" in out

    def test_figure_table(self, capsys):
        code = main(
            ["figure", "4b", "--scale", "0.03", "--sizes", "32", "--no-plot"]
        )
        assert code == 0
        assert "Figure 4b" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_figure_uses_the_result_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["figure", "4b", "--scale", "0.03", "--sizes", "32", "--no-plot"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 5" in out
        # the warm rerun must answer from the cache, bit-identically
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "Figure 4b" in warm
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 5" in out

    def test_no_cache_leaves_no_entries(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = [
            "figure", "4b", "--scale", "0.03", "--sizes", "32",
            "--no-plot", "--no-cache",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "entries   : 0" in capsys.readouterr().out

    def test_experiment_accepts_jobs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(
            ["experiment", "table2", "--scale", "0.03", "--jobs", "2"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out


class TestResilienceCli:
    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            [
                "figure", "5b", "--supervised", "--timeout", "30",
                "--max-retries", "3", "--resume", "--checkpoint", "ck.json",
                "--inject-faults", "seed=7,kill=0.3",
                "--fault-report", "fr.json",
            ]
        )
        assert args.supervised and args.resume
        assert args.timeout == 30.0 and args.max_retries == 3
        assert args.checkpoint == "ck.json"
        assert args.inject_faults == "seed=7,kill=0.3"
        assert args.fault_report == "fr.json"

    def test_supervised_figure_reports_clean(self, capsys, tmp_path):
        argv = [
            "figure", "4b", "--scale", "0.03", "--sizes", "32", "--no-plot",
            "--supervised", "--jobs", "1", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Figure 4b" in out
        assert "fault report  : clean" in out
        assert (tmp_path / "sweep-checkpoint.json").exists()

    def test_resume_answers_from_the_checkpoint(self, capsys, tmp_path):
        base = [
            "figure", "4b", "--scale", "0.03", "--sizes", "32", "--no-plot",
            "--jobs", "1", "--no-cache",
            "--checkpoint", str(tmp_path / "ck.json"),
        ]
        assert main(base + ["--supervised"]) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed       : 5 point(s)" in out

    def test_fault_report_file_written(self, capsys, tmp_path):
        report_path = tmp_path / "fr.json"
        argv = [
            "figure", "4b", "--scale", "0.03", "--sizes", "32", "--no-plot",
            "--supervised", "--jobs", "1", "--no-cache",
            "--checkpoint", str(tmp_path / "ck.json"),
            "--fault-report", str(report_path),
        ]
        assert main(argv) == 0
        payload = json.loads(report_path.read_text())
        assert payload["events"] == []
        assert payload["counts"] == {}
        # Satellite: a clean sweep still reports which rung served each
        # point, so the compiled rung's engagement rate is observable.
        assert set(payload["rungs"]) == {"compiled"}
        assert sum(payload["rungs"].values()) >= 1

    def test_run_with_injected_replay_divergence(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        code = main(
            [
                "run", "--scale", "0.03", "--cache", "64",
                "--inject-faults", "diverge=1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine rung   : idle-skip" in out
        assert "degraded" in out
        # the injectors must be disarmed again afterwards
        import os

        assert "REPRO_FAULT_PLAN" not in os.environ

    def test_run_without_injection_has_no_rung_banner(self, capsys):
        assert main(["run", "--scale", "0.03", "--cache", "64"]) == 0
        assert "engine rung" not in capsys.readouterr().out


class TestTrace:
    def test_parser_accepts_trace(self):
        args = build_parser().parse_args(
            ["trace", "--loop", "3", "--out", "t.jsonl"]
        )
        assert callable(args.func) and args.loop == 3

    def test_bad_loop_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--loop", "15"])

    def test_trace_single_loop(self, capsys, tmp_path):
        out_path = tmp_path / "ll3.jsonl"
        code = main(
            ["trace", "--loop", "3", "--scale", "0.05", "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "cross-check   : trace metrics match simulator counters" in out
        assert out_path.stat().st_size > 0
        first = out_path.read_text().splitlines()[0]
        assert first.startswith('{"c":0,"o":"sim","k":"begin"')

    @pytest.mark.parametrize("strategy", ["conventional", "tib"])
    def test_trace_other_strategies(self, capsys, strategy):
        code = main(
            ["trace", "--strategy", strategy, "--loop", "3", "--scale", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "cross-check" in out

    def test_run_with_trace_out(self, capsys, tmp_path):
        out_path = tmp_path / "run.jsonl"
        code = main(
            ["run", "--scale", "0.03", "--trace-out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert f"trace written : {out_path}" in out
        assert out_path.stat().st_size > 0


class TestCacheStatsRobustness:
    def test_stats_on_missing_dir(self, capsys, tmp_path):
        missing = tmp_path / "never-created"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 0" in out
        assert "size      : 0.0 KiB" in out
        assert not missing.exists()  # stats must not create the directory

    def test_stats_on_empty_dir(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "entries   : 0" in capsys.readouterr().out

    def test_stats_when_root_is_a_file(self, capsys, tmp_path):
        bogus = tmp_path / "cachefile"
        bogus.write_text("not a directory")
        assert main(["cache", "stats", "--cache-dir", str(bogus)]) == 0
        assert "entries   : 0" in capsys.readouterr().out

    def test_clear_on_missing_dir(self, capsys, tmp_path):
        missing = tmp_path / "never-created"
        assert main(["cache", "clear", "--cache-dir", str(missing)]) == 0
        assert "removed 0" in capsys.readouterr().out


class TestDisasm:
    def test_full_listing(self, capsys):
        from repro.cli import main

        assert main(["disasm", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "halt" in out and "pbrne" in out

    def test_single_loop(self, capsys):
        from repro.cli import main

        assert main(["disasm", "--scale", "0.03", "--loop", "3"]) == 0
        out = capsys.readouterr().out
        assert "inner loop of ll3" in out
        assert "ld r6, 32" in out  # the FPU result pickup


class TestServeCli:
    def test_serve_subparser_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "serve",
                "--port", "0",
                "--jobs", "0",
                "--queue-limit", "9",
                "--tenant-quota", "3",
                "--shed-limit", "5",
                "--point-timeout", "2.5",
                "--deadline", "12",
                "--breaker-threshold", "2",
                "--breaker-cooldown", "1.5",
                "--no-cache",
                "--scale", "0.03",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.jobs == 0
        assert args.queue_limit == 9 and args.tenant_quota == 3
        assert args.shed_limit == 5 and args.point_timeout == 2.5
        assert args.deadline == 12.0
        assert args.breaker_threshold == 2 and args.breaker_cooldown == 1.5
        assert args.no_cache

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8750
        assert args.jobs is None and not args.no_cache

    def test_serve_boots_and_answers(self, tmp_path):
        import re
        import signal
        import subprocess
        import sys

        from repro.core.service import ServiceClient

        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "serve", "--port", "0", "--jobs", "0",
                "--scale", "0.03", "--cache-dir", str(tmp_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no service banner in: {banner!r}"
            client = ServiceClient("127.0.0.1", int(match.group(1)), timeout=60)
            status, payload = client.healthz()
            assert status == 200 and payload["ok"] is True
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()


class TestCacheQuarantineCli:
    def test_clear_quarantine_only(self, capsys, tmp_path):
        qdir = tmp_path / "quarantine"
        qdir.mkdir(parents=True)
        (qdir / "bad.json").write_text("{torn")
        (tmp_path / "aaaa.json").write_text("{}")  # a live entry survives
        assert main(
            ["cache", "clear", "--quarantine", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "removed 1 quarantined entry" in out
        assert (tmp_path / "aaaa.json").exists()
        assert list(qdir.glob("*.json")) == []

    def test_clear_quarantine_empty(self, capsys, tmp_path):
        assert main(
            ["cache", "clear", "--quarantine", "--cache-dir", str(tmp_path)]
        ) == 0
        assert "removed 0 quarantined entries" in capsys.readouterr().out

    def test_stats_reports_the_cap(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "cap 4096 KiB / 7 days" in capsys.readouterr().out
