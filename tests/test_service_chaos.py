"""Chaos acceptance test for the simulation job service.

The ISSUE-10 acceptance bar: ≥ 50 concurrent requests (≥ 30%
duplicates) against a service running real worker processes under
injected worker kills, point hangs and cache corruption must complete
with **zero wrong answers** — every served checksum matches a clean
uncached reference run — with duplicates provably coalesced, a
past-deadline request answered with a structured timeout instead of a
result, and ``/healthz`` answering throughout.
"""

import threading
import time

import pytest

from repro.core import faults
from repro.core.config import MachineConfig
from repro.core.service import ServiceClient, ServiceConfig, ServiceThread
from repro.core.simcache import SimulationCache, result_key
from repro.core.simulator import simulate

#: 18 unique points × 3 requests each = 54 requests, 36 duplicates (67%)
UNIQUE_POINTS = 18
REPEATS = 3


def _unique_fields() -> list[dict]:
    fields = []
    for size in (32, 64, 128, 256, 512, 1024):
        fields.append(MachineConfig.conventional(icache_size=size).to_dict())
        fields.append(
            MachineConfig.pipe("16-16", icache_size=size).to_dict()
        )
        fields.append(
            MachineConfig.pipe("8-8", icache_size=size).to_dict()
        )
    assert len(fields) == UNIQUE_POINTS
    return fields


def test_chaos_session_serves_only_correct_answers(tiny_program, tmp_path):
    unique = _unique_fields()
    requests = [unique[index % UNIQUE_POINTS] for index in range(UNIQUE_POINTS * REPEATS)]
    assert len(requests) >= 50
    cache = SimulationCache(tmp_path / "cache")
    faults.deactivate()
    faults.activate(
        faults.FaultPlan(
            seed=13,
            worker_kill=0.35,
            point_hang=0.2,
            cache_corrupt=0.35,
            hang_seconds=30.0,
        )
    )
    # point_timeout must comfortably exceed a loaded-box simulation
    # (so only the injected 30s hangs trip it) while staying far below
    # hang_seconds; generous retries absorb the once-per-key kills.
    config = ServiceConfig(
        pool_jobs=4,
        queue_limit=128,
        tenant_quota=128,
        shed_limit=64,
        point_timeout=8.0,
        max_retries=8,
        backoff=0.02,
        default_deadline=300.0,
    )
    served: list[tuple[int, dict]] = []
    served_lock = threading.Lock()
    health: list[int] = []
    stop_polling = threading.Event()

    try:
        with ServiceThread(tiny_program, config, cache) as handle:
            client = ServiceClient("127.0.0.1", handle.port, timeout=600)

            def poll_health() -> None:
                poller = ServiceClient("127.0.0.1", handle.port, timeout=10)
                while not stop_polling.is_set():
                    status, _payload = poller.healthz()
                    health.append(status)
                    stop_polling.wait(0.1)

            poller_thread = threading.Thread(target=poll_health)
            poller_thread.start()

            def request(fields: dict) -> None:
                outcome = client.simulate(fields, deadline=300.0)
                with served_lock:
                    served.append(outcome)

            threads = [
                threading.Thread(target=request, args=(fields,))
                for fields in requests
            ]
            for thread in threads:
                thread.start()
            # One past-deadline request rides along with the stampede.
            deadline_status, deadline_payload = client.simulate(
                unique[0], deadline=0.0
            )
            for thread in threads:
                thread.join()
            stats = client.stats()
            stop_polling.set()
            poller_thread.join()
    finally:
        faults.deactivate()

    # Zero wrong answers: every served checksum equals the clean
    # uncached reference-engine result for its config.
    references = {
        result_key(MachineConfig.from_dict(fields), tiny_program): simulate(
            MachineConfig.from_dict(fields), tiny_program
        ).checksum()
        for fields in unique
    }
    assert len(served) == len(requests)
    for status, payload in served:
        assert status == 200, payload
        assert payload["checksum"] == references[payload["key"]]

    # Duplicates provably coalesced: the counter moved, and the number
    # of actual simulations is bounded by one per unique key plus the
    # corrupt-heal re-runs (a quarantined entry legitimately costs one
    # extra simulation).
    assert stats["coalesce_hits"] > 0
    quarantined = stats["cache"]["quarantined"]
    assert UNIQUE_POINTS <= stats["simulations"] <= UNIQUE_POINTS + quarantined

    # The injected faults actually happened and were recovered from.
    fault_kinds = set(stats["faults"])
    assert fault_kinds & {"worker_crash", "timeout"}, stats["faults"]

    # The past-deadline request got a structured timeout, not a result.
    assert deadline_status == 504
    assert deadline_payload["error"]["type"] == "deadline"

    # /healthz never stopped answering.
    assert health, "health poller never ran"
    assert all(status == 200 for status in health)
