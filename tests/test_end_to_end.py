"""End-to-end equivalence: timing simulator vs functional vs reference.

The cycle-level machine must retire exactly the same instruction stream
and leave exactly the same memory image as the functional simulator, on
the real benchmark, for both fetch strategies and several memory design
points.  Timing must never change semantics.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.simulator import Simulator
from repro.cpu.functional import FunctionalSimulator

CONFIGS = {
    "pipe-16-16-fast": MachineConfig.pipe("16-16", 128, memory_access_time=1),
    "pipe-8-8-slow-narrow": MachineConfig.pipe(
        "8-8", 32, memory_access_time=6, input_bus_width=4
    ),
    "pipe-32-32-pipelined": MachineConfig.pipe(
        "32-32", 64, memory_access_time=6, memory_pipelined=True
    ),
    "pipe-guaranteed-fetch": MachineConfig.pipe(
        "16-16", 64, memory_access_time=3, true_prefetch=False
    ),
    "conventional-slow": MachineConfig.conventional(64, memory_access_time=6),
    "conventional-narrow": MachineConfig.conventional(
        32, memory_access_time=2, input_bus_width=4
    ),
    "pipe-tiny-queues": MachineConfig.pipe(
        "16-16",
        128,
        memory_access_time=6,
        laq_capacity=2,
        ldq_capacity=4,
        saq_capacity=2,
        sdq_capacity=2,
    ),
}


@pytest.fixture(scope="module")
def functional_baseline(tiny_program):
    simulator = FunctionalSimulator(tiny_program)
    result = simulator.run()
    return simulator, result


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_timing_preserves_semantics(name, tiny_program, functional_baseline):
    functional, functional_result = functional_baseline
    simulator = Simulator(CONFIGS[name], tiny_program)
    result = simulator.run()

    assert result.halted
    assert result.instructions == functional_result.instructions
    assert result.loads == functional_result.loads
    assert result.stores == functional_result.stores
    assert result.fpu_operations == functional_result.fpu_operations
    assert result.branches == functional_result.branches
    assert result.branches_taken == functional_result.branches_taken
    assert bytes(simulator.engine.memory) == bytes(functional.memory)


def test_cycle_counts_ordered_by_memory_speed(tiny_program):
    """Slower memory can never make the same machine faster."""
    cycles = []
    for access_time in (1, 2, 3, 6):
        config = MachineConfig.pipe("16-16", 128, memory_access_time=access_time)
        cycles.append(Simulator(config, tiny_program).run().cycles)
    assert cycles == sorted(cycles)


def test_pipelining_never_hurts(tiny_program):
    for strategy in ("pipe", "conventional"):
        if strategy == "pipe":
            base = MachineConfig.pipe("16-16", 64, memory_access_time=6)
        else:
            base = MachineConfig.conventional(64, memory_access_time=6)
        plain = Simulator(base, tiny_program).run().cycles
        piped = Simulator(
            base.with_overrides(memory_pipelined=True), tiny_program
        ).run().cycles
        assert piped <= plain


def test_wider_bus_never_hurts(tiny_program):
    narrow = MachineConfig.pipe("16-16", 64, memory_access_time=6,
                                input_bus_width=4)
    wide = narrow.with_overrides(input_bus_width=8)
    assert (
        Simulator(wide, tiny_program).run().cycles
        <= Simulator(narrow, tiny_program).run().cycles
    )


def test_store_to_load_overlaps_resolved_by_queue_order(tiny_program):
    """The recurrence kernels (LL5/LL11) load values their previous
    iteration stored.  With slow memory the store can still sit in the
    SAQ when the load issues; oldest-first arbitration at the memory
    interface keeps the order right.  The diagnostic counter must see
    these overlaps (the mechanism is exercised), and the bit-exact
    equivalence tests above prove they are resolved correctly."""
    config = MachineConfig.pipe("16-16", 32, memory_access_time=6)
    result = Simulator(config, tiny_program).run()
    assert result.ordering_hazards > 0
    assert result.ordering_hazards < result.loads * 0.1
