"""Trace-derived metrics must equal the simulator's own counters.

The simulator keeps two parallel books: the stats objects every
component updates inline (what :class:`SimulationResult` reports), and
the event stream the tracer emits.  ``TraceMetrics.verify_against``
compares every shared counter — cycles, instructions, the whole cache /
fetch / memory / queue / backend picture — and any drift between an
instrumented site's stats line and its event is a failure here.

The matrix covers every configuration family the analysis layer sweeps:
all Table II PIPE configurations, each of Hill's prefetch policies for
the conventional cache, the TIB machine, and the ablation knobs
(priority order, pipelined memory, bus width, associativity).
"""

import pytest

from repro.core.config import (
    PIPE_CONFIGURATIONS,
    MachineConfig,
    PrefetchPolicy,
    RequestPriority,
)
from repro.core.simulator import simulate_traced
from repro.core.trace import TraceMetrics
from repro.kernels.suite import build_livermore_program

CONFIGS: dict[str, MachineConfig] = {}
for _name in PIPE_CONFIGURATIONS:
    CONFIGS[f"pipe-{_name}"] = MachineConfig.pipe(_name, 128, memory_access_time=6)
for _policy in PrefetchPolicy:
    CONFIGS[f"conventional-{_policy.value}"] = MachineConfig.conventional(
        128, memory_access_time=6, prefetch_policy=_policy
    )
CONFIGS["tib"] = MachineConfig.tib(memory_access_time=6)
CONFIGS["pipe-data-first"] = MachineConfig.pipe(
    "16-16", 128, memory_access_time=6, priority=RequestPriority.DATA_FIRST
)
CONFIGS["pipe-pipelined-mem"] = MachineConfig.pipe(
    "16-16", 128, memory_access_time=6, memory_pipelined=True
)
CONFIGS["pipe-narrow-bus"] = MachineConfig.pipe(
    "16-16", 128, memory_access_time=6, input_bus_width=4
)
CONFIGS["pipe-2way"] = MachineConfig.pipe(
    "16-16", 128, memory_access_time=6, cache_associativity=2
)
CONFIGS["conventional-tiny-cache"] = MachineConfig.conventional(
    32, memory_access_time=6
)


@pytest.fixture(scope="module")
def single_loop_program():
    # One Livermore loop keeps each of the ~15 matrix points fast while
    # still exercising loads, stores, FPU traffic, and PBR redirects.
    return build_livermore_program(scale=0.05, loops=(3,))


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_trace_metrics_match_result(name, single_loop_program):
    result = simulate_traced(CONFIGS[name], single_loop_program)
    assert result.halted
    assert result.trace_metrics is not None
    metrics = TraceMetrics.from_dict(result.trace_metrics)
    mismatches = metrics.verify_against(result)
    assert mismatches == []


@pytest.mark.parametrize("strategy", ["pipe", "conventional", "tib"])
def test_full_suite_crosscheck(strategy, tiny_program):
    """The whole 14-loop benchmark (tiny scale), one run per strategy."""
    config = {
        "pipe": MachineConfig.pipe("16-16", 128, memory_access_time=6),
        "conventional": MachineConfig.conventional(128, memory_access_time=6),
        "tib": MachineConfig.tib(memory_access_time=6),
    }[strategy]
    result = simulate_traced(config, tiny_program)
    metrics = TraceMetrics.from_dict(result.trace_metrics)
    assert metrics.verify_against(result) == []
    # and the summary's derived figures stay in range
    assert 0.0 <= metrics.cache_miss_rate <= 1.0
    assert 0.0 <= metrics.output_port_utilization <= 1.0
    assert 0.0 <= metrics.input_port_utilization <= 1.0
    assert metrics.ipc == pytest.approx(result.ipc)


def test_file_replay_equals_live_aggregation(tmp_path, single_loop_program):
    """Aggregating the JSONL from disk gives the same metrics object the
    live MetricsSink produced during the run."""
    config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
    trace_path = tmp_path / "trace.jsonl"
    result = simulate_traced(config, single_loop_program, trace_path=trace_path)
    from repro.core.trace import read_trace

    replayed = TraceMetrics.from_events(read_trace(trace_path))
    assert replayed == TraceMetrics.from_dict(result.trace_metrics)
    assert replayed.verify_against(result) == []
