"""Integration: the paper's qualitative findings at reduced scale.

These are the same claim checks the full-fidelity benchmark harness
runs, executed at workload scale 0.10 with three cache sizes so the
whole module stays inside a couple of minutes.  The shapes the paper
reports are robust to scale (the loops' code footprints do not change),
so these must pass here too.
"""

import pytest

from repro.analysis.claims import (
    by_label,
    check_figure4a,
    check_figure5,
    check_figure6,
    check_headline,
    check_line_size_reversal,
)
from repro.analysis.experiments import ExperimentContext

CACHE_SIZES = (32, 128, 512)


@pytest.fixture(scope="module")
def context(small_suite):
    return ExperimentContext(
        program=small_suite.program,
        cache_sizes=CACHE_SIZES,
        suite=small_suite,
        scale=0.10,
    )


class TestFigure4Shapes:
    def test_conventional_wins_somewhere_only_at_t1_bus4(self, context):
        series = context.sweep(memory_access_time=1, input_bus_width=4)
        checks = check_figure4a(series)
        assert all(check.passed for check in checks), "\n".join(map(str, checks))

    def test_line_size_8_wins_with_fast_memory(self, context):
        fast = context.sweep(memory_access_time=1, input_bus_width=4)
        slow = context.sweep(
            memory_access_time=6, input_bus_width=8, memory_pipelined=True
        )
        checks = check_line_size_reversal(fast, slow)
        assert all(check.passed for check in checks), "\n".join(map(str, checks))


class TestFigure5Shapes:
    def test_every_pipe_configuration_beats_conventional_at_t6(self, context):
        wide = context.sweep(memory_access_time=6, input_bus_width=8)
        narrow = context.sweep(memory_access_time=6, input_bus_width=4)
        checks = check_figure5(wide, series_narrow_bus=narrow)
        assert all(check.passed for check in checks), "\n".join(map(str, checks))
        checks_narrow = check_figure5(narrow)
        assert all(check.passed for check in checks_narrow)


class TestFigure6Shapes:
    def test_pipelined_memory_compresses_curves(self, context):
        base = context.sweep(memory_access_time=6, input_bus_width=8)
        piped = context.sweep(
            memory_access_time=6, input_bus_width=8, memory_pipelined=True
        )
        checks = check_figure6(base, piped)
        assert all(check.passed for check in checks), "\n".join(map(str, checks))


class TestHeadlineShape:
    def test_up_to_twice_as_fast(self, context):
        series = context.sweep(memory_access_time=6, input_bus_width=4)
        checks = check_headline(series)
        assert all(check.passed for check in checks), "\n".join(map(str, checks))

    def test_speedup_magnitude(self, context):
        """The 32-byte-cache speedup should be near the paper's 'twice'."""
        curves = by_label(context.sweep(memory_access_time=6, input_bus_width=4))
        conventional = curves["conventional"].as_dict()[32]
        best_pipe = min(
            curves[label].as_dict()[32]
            for label in curves
            if label != "conventional"
        )
        assert conventional / best_pipe > 1.6


class TestKneeOfTheCurve:
    def test_all_curves_flatten_past_128_bytes(self, context):
        """Section 6: 'an initial large performance improvement followed
        by a flattening of the curves ... the knee corresponds to the
        size of most of the inner loops' (half fit in 128 bytes)."""
        series = context.sweep(memory_access_time=6, input_bus_width=8)
        for curve in series:
            cycles = curve.as_dict()
            if 32 not in cycles:
                continue
            drop_to_knee = cycles[32] - cycles[128]
            drop_past_knee = cycles[128] - cycles[512]
            assert drop_to_knee > 0
            assert drop_past_knee < drop_to_knee, curve.label
