"""Unit tests for memory request objects and priority keys."""

import pytest

from repro.memory.requests import (
    RETURN_TIER_DEMAND,
    RETURN_TIER_FPU_RESULT,
    RETURN_TIER_PREFETCH,
    MemoryRequest,
    RequestKind,
    RequestPriority,
    acceptance_order,
    return_tier,
)


def request(kind=RequestKind.LOAD, demand=True, seq=0, size=4):
    return MemoryRequest(kind=kind, address=0x100, size=size, seq=seq, demand=demand)


class TestRequestState:
    def test_initial_state(self):
        r = request(size=16)
        assert not r.in_flight
        assert r.remaining_bytes == 16
        assert not r.completed

    def test_in_flight_lifecycle(self):
        r = request()
        r.accepted_at = 5
        assert r.in_flight
        r.completed = True
        assert not r.in_flight

    def test_delivery_accounting(self):
        r = request(size=16)
        r.delivered_bytes = 8
        assert r.remaining_bytes == 8

    def test_promotion(self):
        r = request(kind=RequestKind.IFETCH, demand=False)
        assert return_tier(r) == RETURN_TIER_PREFETCH
        r.promote_to_demand()
        assert r.demand
        assert return_tier(r) == RETURN_TIER_DEMAND


class TestAcceptanceOrdering:
    def test_instruction_first_ranks(self):
        priority = RequestPriority.INSTRUCTION_FIRST
        demand = acceptance_order(request(RequestKind.IFETCH, demand=True), priority)
        prefetch = acceptance_order(request(RequestKind.IFETCH, demand=False), priority)
        load = acceptance_order(request(RequestKind.LOAD), priority)
        store = acceptance_order(request(RequestKind.STORE), priority)
        assert demand < prefetch < load
        assert load[0] == store[0]  # loads and stores share the data rank

    def test_data_first_ranks(self):
        priority = RequestPriority.DATA_FIRST
        demand = acceptance_order(request(RequestKind.IFETCH, demand=True), priority)
        prefetch = acceptance_order(request(RequestKind.IFETCH, demand=False), priority)
        load = acceptance_order(request(RequestKind.LOAD), priority)
        assert load < demand < prefetch

    def test_seq_breaks_ties_within_rank(self):
        priority = RequestPriority.DATA_FIRST
        older = acceptance_order(request(seq=1), priority)
        younger = acceptance_order(request(seq=9), priority)
        assert older < younger


class TestReturnTiers:
    def test_tier_values_ordered(self):
        assert RETURN_TIER_DEMAND < RETURN_TIER_FPU_RESULT < RETURN_TIER_PREFETCH

    def test_load_is_demand_tier(self):
        assert return_tier(request(RequestKind.LOAD)) == RETURN_TIER_DEMAND

    def test_store_rejected(self):
        with pytest.raises(ValueError):
            return_tier(request(RequestKind.STORE))
