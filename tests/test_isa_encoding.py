"""Unit + property tests for the binary instruction encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import (
    PARCEL_BYTES,
    DecodeError,
    InstructionFormat,
    decode_instruction,
    encode_instruction,
    encode_program,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MAX_BRANCH_DELAY, OpClass, Opcode

# ----------------------------------------------------------------------
# Strategy: arbitrary *valid* instructions
# ----------------------------------------------------------------------
_FIELD = st.integers(min_value=0, max_value=7)
_IMM = st.integers(min_value=0, max_value=0xFFFF)


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(list(Opcode)))
    a = draw(_FIELD)
    b = draw(_FIELD)
    c = draw(_FIELD)
    imm = draw(_IMM) if op.is_two_parcel else 0
    if op.op_class == OpClass.BRANCH:
        c = draw(st.integers(min_value=0, max_value=MAX_BRANCH_DELAY))
    return Instruction(op, a=a, b=b, c=c, imm=imm)


class TestRoundTrip:
    @given(instructions(), st.sampled_from(list(InstructionFormat)))
    def test_roundtrip(self, instr, fmt):
        raw = encode_instruction(instr, fmt)
        decoded, size = decode_instruction(raw, 0, fmt)
        assert decoded == instr
        assert size == len(raw)
        assert size == fmt.instruction_size(instr)

    @given(st.lists(instructions(), min_size=1, max_size=20),
           st.sampled_from(list(InstructionFormat)))
    def test_program_roundtrip(self, instrs, fmt):
        raw = encode_program(instrs, fmt)
        offset = 0
        decoded = []
        while offset < len(raw):
            instr, size = decode_instruction(raw, offset, fmt)
            decoded.append(instr)
            offset += size
        assert decoded == instrs


class TestSizes:
    def test_fixed32_is_always_four_bytes(self):
        for instr in (Instruction.nop(), Instruction.alu_ri(Opcode.LI, 1, 0, 5)):
            assert len(encode_instruction(instr, InstructionFormat.FIXED32)) == 4

    def test_parcel_sizes(self):
        assert len(encode_instruction(Instruction.nop(), InstructionFormat.PARCEL)) == 2
        two = Instruction.alu_ri(Opcode.LI, 1, 0, 5)
        assert len(encode_instruction(two, InstructionFormat.PARCEL)) == 4

    def test_max_instruction_size(self):
        assert InstructionFormat.PARCEL.max_instruction_size == 4
        assert InstructionFormat.FIXED32.max_instruction_size == 4


class TestErrors:
    def test_unknown_opcode(self):
        # opcode field 0x7F is not assigned
        raw = (0x7F << 9).to_bytes(PARCEL_BYTES, "little")
        with pytest.raises(DecodeError):
            decode_instruction(raw, 0)

    def test_truncated_first_parcel(self):
        with pytest.raises(DecodeError):
            decode_instruction(b"\x00", 0)

    def test_truncated_immediate(self):
        raw = encode_instruction(
            Instruction.alu_ri(Opcode.LI, 1, 0, 5), InstructionFormat.PARCEL
        )
        with pytest.raises(DecodeError):
            decode_instruction(raw[:2], 0, InstructionFormat.PARCEL)

    def test_ill_formed_branch_delay(self):
        # Hand-craft a PBRA with delay field 7 — legal; then check an
        # unknown opcode value just past the branch family is rejected.
        raw = ((0x45 << 9) | 7).to_bytes(PARCEL_BYTES, "little")
        with pytest.raises(DecodeError):
            decode_instruction(raw, 0)


class TestBranchBitVisibleInEncoding:
    """The fetch logic must see the branch bit in the top of the parcel."""

    def test_branch_bit_position(self):
        instr = Instruction.branch(Opcode.PBRA, 0, 0, 0)
        raw = encode_instruction(instr, InstructionFormat.PARCEL)
        first = int.from_bytes(raw[:2], "little")
        assert first & 0x8000  # bit 15 = branch-class bit

    def test_non_branch_bit_clear(self):
        raw = encode_instruction(Instruction.nop(), InstructionFormat.PARCEL)
        first = int.from_bytes(raw[:2], "little")
        assert not (first & 0x8000)
