"""Unit tests for machine configuration and presets."""

import pytest

from repro.core.config import (
    PAPER_CACHE_SIZES,
    PIPE_CONFIGURATIONS,
    FetchStrategy,
    MachineConfig,
)
from repro.isa.encoding import InstructionFormat
from repro.memory.requests import RequestPriority


class TestTable2Presets:
    def test_all_four_configurations(self):
        assert set(PIPE_CONFIGURATIONS) == {"8-8", "16-16", "16-32", "32-32"}

    @pytest.mark.parametrize(
        "name,line,iq,iqb",
        [("8-8", 8, 8, 8), ("16-16", 16, 16, 16),
         ("16-32", 32, 16, 32), ("32-32", 32, 32, 32)],
    )
    def test_values_match_paper(self, name, line, iq, iqb):
        config = PIPE_CONFIGURATIONS[name]
        assert (config.line_size, config.iq_size, config.iqb_size) == (line, iq, iqb)

    def test_paper_cache_sizes(self):
        assert PAPER_CACHE_SIZES == (32, 64, 128, 256, 512)


class TestValidation:
    def test_cache_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            MachineConfig(icache_size=100, line_size=16)

    def test_line_must_be_sub_block_multiple(self):
        with pytest.raises(ValueError):
            MachineConfig(line_size=10)

    def test_bus_width(self):
        with pytest.raises(ValueError):
            MachineConfig(input_bus_width=2)
        with pytest.raises(ValueError):
            MachineConfig(input_bus_width=6)

    def test_access_time(self):
        with pytest.raises(ValueError):
            MachineConfig(memory_access_time=0)

    def test_iqb_holds_a_line(self):
        with pytest.raises(ValueError):
            MachineConfig(line_size=32, iqb_size=16, iq_size=16, icache_size=128)

    def test_queue_capacities(self):
        with pytest.raises(ValueError):
            MachineConfig(ldq_capacity=0)

    def test_branch_latency(self):
        with pytest.raises(ValueError):
            MachineConfig(branch_resolution_latency=0)

    def test_conventional_skips_iq_checks(self):
        config = MachineConfig.conventional(icache_size=32, line_size=32)
        assert config.fetch_strategy is FetchStrategy.CONVENTIONAL


class TestPresets:
    def test_pipe_preset_by_name(self):
        config = MachineConfig.pipe("16-32", icache_size=64)
        assert config.line_size == 32
        assert config.iq_size == 16
        assert config.iqb_size == 32
        assert config.icache_size == 64
        assert config.priority is RequestPriority.INSTRUCTION_FIRST

    def test_conventional_priority_default(self):
        assert MachineConfig.conventional().priority is RequestPriority.DATA_FIRST

    def test_conventional_priority_overridable(self):
        config = MachineConfig.conventional(
            priority=RequestPriority.INSTRUCTION_FIRST
        )
        assert config.priority is RequestPriority.INSTRUCTION_FIRST

    def test_with_overrides(self):
        base = MachineConfig.pipe("16-16")
        changed = base.with_overrides(memory_access_time=3)
        assert changed.memory_access_time == 3
        assert base.memory_access_time == 6  # immutable original

    def test_describe(self):
        text = MachineConfig.pipe("16-16", 128).describe()
        assert "PIPE 16-16" in text and "128B" in text
        text = MachineConfig.conventional(64).describe()
        assert "conventional" in text

    def test_defaults_are_the_paper_machine(self):
        config = MachineConfig()
        assert config.icache_size == 128  # the fabricated chip's cache
        assert config.memory_access_time == 6
        assert config.instruction_format is InstructionFormat.FIXED32
        assert config.true_prefetch


class TestFromDict:
    def test_round_trips_to_dict(self):
        config = MachineConfig.pipe("16-16", 256)
        assert MachineConfig.from_dict(config.to_dict()) == config

    def test_partial_dict_takes_the_paper_defaults(self):
        # Service request bodies are hand-written partial dicts; the
        # omitted fields must build the paper's baseline machine.
        config = MachineConfig.from_dict(
            {"fetch_strategy": "conventional", "icache_size": 64}
        )
        assert config.icache_size == 64
        assert config.memory_access_time == 6
        assert config.instruction_format is InstructionFormat.FIXED32

    def test_unknown_key_is_an_error(self):
        with pytest.raises(TypeError):
            MachineConfig.from_dict(
                {"fetch_strategy": "conventional", "cache_bytes": 64}
            )
