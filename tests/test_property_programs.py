"""Property test: random integer programs against a register model.

Hypothesis generates random straight-line ALU programs over r0-r5.
Each is assembled, run on the functional simulator *and* the cycle-level
machine, and both final register files must match an independent Python
model of the ISA semantics.  This exercises the assembler, encoder,
decoder, executor, and both simulators together on inputs no hand-written
test would cover.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.simulator import Simulator
from repro.cpu.alu import to_signed, to_unsigned
from repro.cpu.functional import FunctionalSimulator

REGS = (0, 1, 2, 3, 4, 5)

_RR_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: to_signed(a) >> (b & 31),
    "seq": lambda a, b: int(a == b),
    "sne": lambda a, b: int(a != b),
    "slt": lambda a, b: int(to_signed(a) < to_signed(b)),
    "sle": lambda a, b: int(to_signed(a) <= to_signed(b)),
}

_RI_OPS = {
    "addi": lambda a, imm: a + _sext(imm),
    "subi": lambda a, imm: a - _sext(imm),
    "andi": lambda a, imm: a & imm,
    "ori": lambda a, imm: a | imm,
    "xori": lambda a, imm: a ^ imm,
    "slli": lambda a, imm: a << (imm & 31),
    "srli": lambda a, imm: a >> (imm & 31),
}


def _sext(imm16: int) -> int:
    return imm16 - 0x10000 if imm16 & 0x8000 else imm16


reg = st.sampled_from(REGS)
imm16 = st.integers(min_value=0, max_value=0xFFFF)

rr_instr = st.tuples(st.sampled_from(sorted(_RR_OPS)), reg, reg, reg)
ri_instr = st.tuples(st.sampled_from(sorted(_RI_OPS)), reg, reg, imm16)
li_instr = st.tuples(st.just("li"), reg, imm16)

program_body = st.lists(st.one_of(rr_instr, ri_instr, li_instr), max_size=40)


def render(statement) -> str:
    if statement[0] == "li":
        _op, rd, imm = statement
        return f"li r{rd}, {imm}"
    op, rd, rs1, third = statement
    if op in _RR_OPS:
        return f"{op} r{rd}, r{rs1}, r{third}"
    return f"{op} r{rd}, r{rs1}, {third}"


def model(statements) -> list[int]:
    registers = [0] * 8
    for statement in statements:
        if statement[0] == "li":
            _op, rd, imm = statement
            registers[rd] = to_unsigned(_sext(imm))
            continue
        op, rd, rs1, third = statement
        if op in _RR_OPS:
            value = _RR_OPS[op](registers[rs1], registers[third])
        else:
            value = _RI_OPS[op](registers[rs1], third)
        registers[rd] = to_unsigned(value)
    return registers


@settings(max_examples=60, deadline=None)
@given(program_body)
def test_random_alu_programs_match_model(statements):
    source = "\n".join(render(s) for s in statements) + "\nhalt"
    program = assemble(source)
    expected = model(statements)

    functional = FunctionalSimulator(program)
    functional.run()
    for index in REGS:
        assert functional.state.read(index) == expected[index], (index, statements)

    timing = Simulator(MachineConfig.pipe("8-8", 32, memory_access_time=3), program)
    timing.run()
    for index in REGS:
        assert timing.backend.state.read(index) == expected[index]
