"""Four-way engine differential matrix.

The fast-path engines promise **trace-identical accounting**: for any
configuration, the idle-cycle-skipping scheduler (``skip=True``), the
steady-state loop-replay engine layered on top of it
(``skip=True, replay=True``), and the per-config compiled step kernel
(``compiled=True``, which folds both fast paths into generated code)
must all produce the same cycle count, the same stats dict, and a
byte-identical JSONL event stream as the reference cycle-by-cycle
loop.  This suite enforces that promise over the same configuration
matrix ``test_trace_crosscheck`` sweeps (all Table II PIPE points,
Hill's prefetch policies, the TIB machine, and the ablation knobs),
and pins down the satellite guarantees: errors raised mid-skip,
mid-replay, or inside a compiled kernel report the true architectural
cycle, and the escape hatches (``skip=False`` / ``REPRO_NO_SKIP``,
``replay=False`` / ``REPRO_NO_REPLAY``, ``compiled=False`` /
``REPRO_NO_COMPILED``) actually select the interpreted paths.

The interpreted rows pin ``compiled=False`` explicitly — with compiled
kernels on by default, a bare ``skip=True`` row would silently run the
codegen engine and the matrix would compare the kernel against itself.

On mismatch a cycles-diff report is written to
``test-reports/cycles-diff.txt`` (override the directory with
``REPRO_DIFF_REPORT_DIR``) so CI can upload it as an artifact.
"""

import json
import os
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.scheduler import (
    IDLE,
    ProgressClock,
    compiled_enabled_default,
    replay_enabled_default,
    skip_enabled_default,
)
from repro.core.simulator import (
    DeadlockError,
    SimulationTimeout,
    Simulator,
    simulate,
    simulate_traced,
)
from repro.kernels.suite import build_livermore_program
from tests.test_trace_crosscheck import CONFIGS

#: the four engines of the differential matrix: (tag, engine kwargs)
ENGINES = (
    ("reference", {"skip": False, "replay": False, "compiled": False}),
    ("idle-skip", {"skip": True, "replay": False, "compiled": False}),
    ("skip+replay", {"skip": True, "replay": True, "compiled": False}),
    ("compiled", {"skip": True, "replay": True, "compiled": True}),
)

#: the fast-path rows compared against the reference row
FAST_TAGS = ("idle-skip", "skip+replay", "compiled")


@pytest.fixture(scope="module")
def single_loop_program():
    return build_livermore_program(scale=0.05, loops=(3,))


def _report_mismatch(name: str, lines: list[str]) -> None:
    """Append a cycles-diff report for CI to upload on failure."""
    report_dir = Path(os.environ.get("REPRO_DIFF_REPORT_DIR", "test-reports"))
    report_dir.mkdir(parents=True, exist_ok=True)
    with open(report_dir / "cycles-diff.txt", "a", encoding="utf-8") as fh:
        fh.write(f"=== {name} ===\n")
        for line in lines:
            fh.write(line + "\n")


def _first_trace_divergence(tag: str, fast: Path, ref: Path) -> list[str]:
    fast_lines = fast.read_text().splitlines()
    ref_lines = ref.read_text().splitlines()
    for index, (a, b) in enumerate(zip(fast_lines, ref_lines)):
        if a != b:
            return [
                f"first divergence at trace line {index + 1}:",
                f"  {tag}: {a}",
                f"  reference: {b}",
            ]
    return [
        f"trace lengths differ: {tag}={len(fast_lines)} "
        f"reference={len(ref_lines)} lines"
    ]


def _compare(name: str, tag: str, fast, ref, fast_path=None, ref_path=None):
    """Cycles / stats-dict / trace-bytes equality with a diff report."""
    lines: list[str] = []
    if fast.cycles != ref.cycles:
        lines.append(f"cycles: {tag}={fast.cycles} reference={ref.cycles}")
    dict_fast, dict_ref = fast.to_dict(), ref.to_dict()
    if dict_fast != dict_ref:
        for key in sorted(set(dict_fast) | set(dict_ref)):
            if dict_fast.get(key) != dict_ref.get(key):
                lines.append(
                    f"stats[{key!r}]: {tag}={json.dumps(dict_fast.get(key))} "
                    f"reference={json.dumps(dict_ref.get(key))}"
                )
    if fast_path is not None and fast_path.read_bytes() != ref_path.read_bytes():
        lines.extend(_first_trace_divergence(tag, fast_path, ref_path))
    if lines:
        _report_mismatch(f"{name} [{tag}]", lines)
    assert lines == [], f"{name} [{tag}] diverged from the reference engine"


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_engines_are_byte_identical(name, single_loop_program, tmp_path):
    """Reference vs idle-skip vs skip+replay vs compiled, traced."""
    config = CONFIGS[name]
    runs = {}
    for tag, kwargs in ENGINES:
        path = tmp_path / f"{tag.replace('+', '-')}.jsonl"
        result = simulate_traced(config, single_loop_program, path, **kwargs)
        runs[tag] = (result, path)
    ref_result, ref_path = runs["reference"]
    for tag in FAST_TAGS:
        result, path = runs[tag]
        _compare(name, tag, result, ref_result, path, ref_path)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_engines_identical_untraced(name, single_loop_program):
    """Without a tracer the stats books must still agree exactly.

    This is the configuration under which replay actually engages on
    data-striding loops (trace batches with striding payloads block
    engagement when traced), so it is the stronger replay and compiled
    check: the compiled kernel specializes the tracer branches away
    entirely and still has to land on the same books.
    """
    config = CONFIGS[name]
    results = {
        tag: simulate(config, single_loop_program, **kwargs)
        for tag, kwargs in ENGINES
    }
    for tag in FAST_TAGS:
        _compare(name, tag, results[tag], results["reference"])


def test_replay_actually_engages(single_loop_program):
    """Guard against the matrix passing because replay never fires."""
    config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
    sim = Simulator(config, single_loop_program, skip=True, replay=True)
    result = sim.run()
    controller = sim.replay_controller
    assert controller is not None
    assert controller.replayed_iterations > 0
    assert 0 < controller.replayed_cycles < result.cycles
    reports = controller.loop_reports()
    assert any(report["phase"] == "engaged" for report in reports)


# ----------------------------------------------------------------------
# Errors raised mid-skip/mid-replay/in-kernel must report the true
# architectural cycle and name the engine that was active (satellite:
# error fidelity).
# ----------------------------------------------------------------------
def test_timeout_mid_skip_reports_true_cycle(single_loop_program):
    # A huge memory latency makes the run quiescent almost immediately,
    # so the skip engine jumps straight into the max_cycles wall.
    config = MachineConfig.conventional(
        128, memory_access_time=1_000, max_cycles=50
    )
    with pytest.raises(SimulationTimeout) as fast:
        simulate(config, single_loop_program, skip=True, compiled=False)
    with pytest.raises(SimulationTimeout) as slow:
        simulate(config, single_loop_program, skip=False, compiled=False)
    with pytest.raises(SimulationTimeout) as kernel:
        simulate(config, single_loop_program, skip=True, compiled=True)
    assert fast.value.cycle == slow.value.cycle == kernel.value.cycle == 50
    assert fast.value.fast_path is True
    assert slow.value.fast_path is False
    assert kernel.value.fast_path is True  # the wall fell inside a skip span
    assert "idle-skip" in str(fast.value)
    assert "reference" in str(slow.value)
    assert "at cycle 50" in str(fast.value)
    assert "at cycle 50" in str(kernel.value)


def test_timeout_mid_replay_reports_true_cycle(single_loop_program):
    """Replay must refuse to jump past ``max_cycles``.

    The limit cuts the run off mid-loop, well after replay has engaged;
    all four engines must hit the wall at the same architectural cycle
    with the same counters.
    """
    config = MachineConfig.pipe(
        "16-16", 128, memory_access_time=6, max_cycles=600
    )
    cycles = set()
    instructions = set()
    for _tag, kwargs in ENGINES:
        with pytest.raises(SimulationTimeout) as excinfo:
            simulate(config, single_loop_program, **kwargs)
        cycles.add(excinfo.value.cycle)
        instructions.add(
            str(excinfo.value).split(" instructions issued")[0].rsplit("; ")[-1]
        )
    assert cycles == {600}
    assert len(instructions) == 1  # same issue count at the wall


def _starved_simulator(skip: bool, compiled: bool = False) -> Simulator:
    program = assemble("loop: lbr b0, loop\npbra b0, 0\nhalt")
    config = MachineConfig.pipe("16-16", 512, max_cycles=100_000)
    sim = Simulator(config, program, skip=skip, compiled=compiled)
    sim.DEADLOCK_CYCLES = 200
    sim.frontend.next_instruction = lambda: None
    sim.frontend.poll_requests = lambda now: []
    return sim


def test_deadlock_mid_skip_matches_reference_cycle():
    with pytest.raises(DeadlockError) as fast:
        _starved_simulator(skip=True).run()
    with pytest.raises(DeadlockError) as slow:
        _starved_simulator(skip=False).run()
    assert fast.value.cycle == slow.value.cycle
    assert fast.value.fast_path is True
    assert slow.value.fast_path is False
    assert "no progress" in str(fast.value)
    assert "idle-skip" in str(fast.value)
    assert "reference" in str(slow.value)
    # The two engines must also agree on when progress last happened.
    assert str(fast.value).split("(")[0] == str(slow.value).split("(")[0]


def test_deadlock_in_compiled_kernel_matches_reference_cycle():
    """A starved machine must deadlock identically from generated code.

    The monkeypatched ``next_instruction`` / ``poll_requests`` land in
    the instance ``__dict__``, so the kernel spec automatically turns
    off the affected guard folds and calls the bound methods — the
    stubs keep working without any opt-out from the test.
    """
    with pytest.raises(DeadlockError) as kernel:
        _starved_simulator(skip=True, compiled=True).run()
    with pytest.raises(DeadlockError) as slow:
        _starved_simulator(skip=False).run()
    assert kernel.value.cycle == slow.value.cycle
    assert kernel.value.fast_path is True
    assert "no progress" in str(kernel.value)
    assert "idle-skip" in str(kernel.value)
    assert str(kernel.value).split("(")[0] == str(slow.value).split("(")[0]


# ----------------------------------------------------------------------
# Escape hatches
# ----------------------------------------------------------------------
def test_no_skip_env_var_disables_skipping(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SKIP", "1")
    assert skip_enabled_default() is False
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.skip is False


def test_skip_enabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_NO_SKIP", raising=False)
    assert skip_enabled_default() is True
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.skip is True


def test_explicit_skip_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SKIP", "1")
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"), skip=True)
    assert sim.skip is True


def test_no_replay_env_var_disables_replay(monkeypatch):
    monkeypatch.setenv("REPRO_NO_REPLAY", "1")
    assert replay_enabled_default() is False
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.replay_enabled is False
    sim.run()
    assert sim.replay_controller is None


def test_replay_enabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_NO_REPLAY", raising=False)
    assert replay_enabled_default() is True
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.replay_enabled is True


def test_explicit_replay_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_REPLAY", "1")
    sim = Simulator(
        MachineConfig.pipe("16-16", 128), assemble("halt"), replay=True
    )
    assert sim.replay_enabled is True


def test_replay_false_matches_replay_true(single_loop_program):
    config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
    on = simulate(config, single_loop_program, skip=True, replay=True)
    off = simulate(config, single_loop_program, skip=True, replay=False)
    assert on.to_dict() == off.to_dict()


def test_no_compiled_env_var_disables_compilation(monkeypatch):
    monkeypatch.setenv("REPRO_NO_COMPILED", "1")
    assert compiled_enabled_default() is False
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.compiled_enabled is False


def test_compiled_enabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_NO_COMPILED", raising=False)
    assert compiled_enabled_default() is True
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.compiled_enabled is True


def test_explicit_compiled_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_COMPILED", "1")
    sim = Simulator(
        MachineConfig.pipe("16-16", 128), assemble("halt"), compiled=True
    )
    assert sim.compiled_enabled is True


def test_compiled_false_matches_compiled_true(single_loop_program):
    config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
    on = simulate(config, single_loop_program, compiled=True)
    off = simulate(config, single_loop_program, compiled=False)
    assert on.to_dict() == off.to_dict()


# ----------------------------------------------------------------------
# Generated-program matrix (the fuzz layer feeding the same promise)
# ----------------------------------------------------------------------
# A fixed seed slice of generated loop-nest kernels (nested loops,
# conditionals, integer scalars, pointer-chasing) runs the full ladder
# traced.  The wide seeded sweep lives in `repro-sim fuzz` and the CI
# fuzz job; tier-1 pins these seeds forever so an engine regression on
# structured workloads fails here, not just nightly.
GENERATED_SEEDS = (0, 3, 11, 47, 2026)

_GENERATED_CONFIGS = {
    "pipe-16-16": lambda: MachineConfig.pipe("16-16", 128, memory_access_time=6),
    "tib": lambda: MachineConfig.tib(memory_access_time=6),
}


@pytest.fixture(scope="module")
def generated_programs():
    from repro.kernels.generate import generate_workload
    from repro.kernels.suite import build_kernel_suite

    programs = {}
    for seed in GENERATED_SEEDS:
        workload = generate_workload(seed, "tiny")
        suite = build_kernel_suite(
            [workload.kernel],
            list(workload.arrays),
            source_name=f"gen{seed}.s",
        )
        programs[seed] = suite.program
    return programs


@pytest.mark.parametrize("config_name", sorted(_GENERATED_CONFIGS))
@pytest.mark.parametrize("seed", GENERATED_SEEDS)
def test_generated_programs_byte_identical(
    seed, config_name, generated_programs, tmp_path
):
    config = _GENERATED_CONFIGS[config_name]()
    program = generated_programs[seed]
    runs = {}
    for tag, kwargs in ENGINES:
        path = tmp_path / f"{tag.replace('+', '-')}.jsonl"
        result = simulate_traced(config, program, path, **kwargs)
        runs[tag] = (result, path)
    ref_result, ref_path = runs["reference"]
    for tag in FAST_TAGS:
        result, path = runs[tag]
        _compare(
            f"generated seed {seed} on {config_name}",
            tag,
            result,
            ref_result,
            path,
            ref_path,
        )


@pytest.mark.parametrize("seed", GENERATED_SEEDS)
def test_generated_programs_identical_untraced(seed, generated_programs):
    """Untraced, so replay can engage on the generated loop nests too."""
    config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
    program = generated_programs[seed]
    results = {
        tag: simulate(config, program, **kwargs) for tag, kwargs in ENGINES
    }
    for tag in FAST_TAGS:
        _compare(f"generated seed {seed} untraced", tag, results[tag], results["reference"])


# ----------------------------------------------------------------------
# Protocol sanity
# ----------------------------------------------------------------------
def test_progress_clock_ticks():
    clock = ProgressClock()
    assert clock.ticks == 0
    clock.tick()
    assert clock.ticks == 1
    assert "1" in repr(clock)


def test_component_hints_are_idle_when_nothing_pending():
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.memory.next_event_cycle(0) == IDLE
    assert sim.backend.next_event_cycle(0) == IDLE
    assert sim.engine.next_event_cycle(0) == IDLE
    assert sim.frontend.next_event_cycle(0) == IDLE
    assert sim.cache.next_event_cycle(0) == IDLE
