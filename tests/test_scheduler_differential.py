"""Skip-on vs skip-off differential matrix.

The idle-cycle-skipping scheduler (``repro.core.scheduler``) promises
**trace-identical accounting**: for any configuration, running with
``skip=True`` must produce the same cycle count, the same stats dict,
and a byte-identical JSONL event stream as the reference cycle-by-cycle
loop.  This suite enforces that promise over the same configuration
matrix ``test_trace_crosscheck`` sweeps (all Table II PIPE points,
Hill's prefetch policies, the TIB machine, and the ablation knobs), and
pins down the satellite guarantees: errors raised mid-skip report the
true architectural cycle, and the escape hatches actually select the
reference engine.

On mismatch a cycles-diff report is written to
``test-reports/cycles-diff.txt`` (override the directory with
``REPRO_DIFF_REPORT_DIR``) so CI can upload it as an artifact.
"""

import json
import os
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.scheduler import IDLE, ProgressClock, skip_enabled_default
from repro.core.simulator import (
    DeadlockError,
    SimulationTimeout,
    Simulator,
    simulate,
    simulate_traced,
)
from repro.kernels.suite import build_livermore_program
from tests.test_trace_crosscheck import CONFIGS


@pytest.fixture(scope="module")
def single_loop_program():
    return build_livermore_program(scale=0.05, loops=(3,))


def _report_mismatch(name: str, lines: list[str]) -> None:
    """Append a cycles-diff report for CI to upload on failure."""
    report_dir = Path(os.environ.get("REPRO_DIFF_REPORT_DIR", "test-reports"))
    report_dir.mkdir(parents=True, exist_ok=True)
    with open(report_dir / "cycles-diff.txt", "a", encoding="utf-8") as fh:
        fh.write(f"=== {name} ===\n")
        for line in lines:
            fh.write(line + "\n")


def _first_trace_divergence(on_path: Path, off_path: Path) -> list[str]:
    on_lines = on_path.read_text().splitlines()
    off_lines = off_path.read_text().splitlines()
    for index, (a, b) in enumerate(zip(on_lines, off_lines)):
        if a != b:
            return [
                f"first divergence at trace line {index + 1}:",
                f"  skip-on : {a}",
                f"  skip-off: {b}",
            ]
    return [
        f"trace lengths differ: skip-on={len(on_lines)} "
        f"skip-off={len(off_lines)} lines"
    ]


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_skip_and_reference_are_byte_identical(name, single_loop_program, tmp_path):
    config = CONFIGS[name]
    on_path = tmp_path / "on.jsonl"
    off_path = tmp_path / "off.jsonl"
    result_on = simulate_traced(config, single_loop_program, on_path, skip=True)
    result_off = simulate_traced(config, single_loop_program, off_path, skip=False)

    lines: list[str] = []
    if result_on.cycles != result_off.cycles:
        lines.append(
            f"cycles: skip-on={result_on.cycles} skip-off={result_off.cycles}"
        )
    dict_on, dict_off = result_on.to_dict(), result_off.to_dict()
    if dict_on != dict_off:
        for key in sorted(set(dict_on) | set(dict_off)):
            if dict_on.get(key) != dict_off.get(key):
                lines.append(
                    f"stats[{key!r}]: skip-on={json.dumps(dict_on.get(key))} "
                    f"skip-off={json.dumps(dict_off.get(key))}"
                )
    if on_path.read_bytes() != off_path.read_bytes():
        lines.extend(_first_trace_divergence(on_path, off_path))
    if lines:
        _report_mismatch(name, lines)
    assert lines == []


def test_untraced_results_identical(single_loop_program):
    """Without a tracer the stats books must still agree exactly."""
    config = MachineConfig.conventional(128, memory_access_time=32)
    result_on = simulate(config, single_loop_program, skip=True)
    result_off = simulate(config, single_loop_program, skip=False)
    assert result_on.to_dict() == result_off.to_dict()


# ----------------------------------------------------------------------
# Errors raised mid-skip must report the true architectural cycle and
# name the engine that was active (satellite: error fidelity).
# ----------------------------------------------------------------------
def test_timeout_mid_skip_reports_true_cycle(single_loop_program):
    # A huge memory latency makes the run quiescent almost immediately,
    # so the skip engine jumps straight into the max_cycles wall.
    config = MachineConfig.conventional(
        128, memory_access_time=1_000, max_cycles=50
    )
    with pytest.raises(SimulationTimeout) as fast:
        simulate(config, single_loop_program, skip=True)
    with pytest.raises(SimulationTimeout) as slow:
        simulate(config, single_loop_program, skip=False)
    assert fast.value.cycle == slow.value.cycle == 50
    assert fast.value.fast_path is True
    assert slow.value.fast_path is False
    assert "idle-skip" in str(fast.value)
    assert "reference" in str(slow.value)
    assert "at cycle 50" in str(fast.value)


def _starved_simulator(skip: bool) -> Simulator:
    program = assemble("loop: lbr b0, loop\npbra b0, 0\nhalt")
    config = MachineConfig.pipe("16-16", 512, max_cycles=100_000)
    sim = Simulator(config, program, skip=skip)
    sim.DEADLOCK_CYCLES = 200
    sim.frontend.next_instruction = lambda: None
    sim.frontend.poll_requests = lambda now: []
    return sim


def test_deadlock_mid_skip_matches_reference_cycle():
    with pytest.raises(DeadlockError) as fast:
        _starved_simulator(skip=True).run()
    with pytest.raises(DeadlockError) as slow:
        _starved_simulator(skip=False).run()
    assert fast.value.cycle == slow.value.cycle
    assert fast.value.fast_path is True
    assert slow.value.fast_path is False
    assert "no progress" in str(fast.value)
    assert "idle-skip" in str(fast.value)
    assert "reference" in str(slow.value)
    # The two engines must also agree on when progress last happened.
    assert str(fast.value).split("(")[0] == str(slow.value).split("(")[0]


# ----------------------------------------------------------------------
# Escape hatches
# ----------------------------------------------------------------------
def test_no_skip_env_var_disables_skipping(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SKIP", "1")
    assert skip_enabled_default() is False
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.skip is False


def test_skip_enabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_NO_SKIP", raising=False)
    assert skip_enabled_default() is True
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.skip is True


def test_explicit_skip_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SKIP", "1")
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"), skip=True)
    assert sim.skip is True


# ----------------------------------------------------------------------
# Protocol sanity
# ----------------------------------------------------------------------
def test_progress_clock_ticks():
    clock = ProgressClock()
    assert clock.ticks == 0
    clock.tick()
    assert clock.ticks == 1
    assert "1" in repr(clock)


def test_component_hints_are_idle_when_nothing_pending():
    sim = Simulator(MachineConfig.pipe("16-16", 128), assemble("halt"))
    assert sim.memory.next_event_cycle(0) == IDLE
    assert sim.backend.next_event_cycle(0) == IDLE
    assert sim.engine.next_event_cycle(0) == IDLE
    assert sim.frontend.next_event_cycle(0) == IDLE
    assert sim.cache.next_event_cycle(0) == IDLE
