"""Unit tests for shared frontend helpers."""

import pytest

from repro.asm import assemble
from repro.frontend.base import FetchStats, decode_at, delay_region_end
from repro.isa.encoding import InstructionFormat
from repro.isa.opcodes import Opcode


@pytest.fixture(scope="module")
def program():
    return assemble(
        """
        pbra b0, 3
        nop
        li r1, 5
        nop
        halt
        """
    )


class TestDecodeAt:
    def test_decodes_layout(self, program):
        instruction, size = decode_at(program.image, program.fmt, 0)
        assert instruction.op == Opcode.PBRA
        assert size == 4

    def test_parcel_sizes(self):
        parcel = assemble("nop\nli r1, 5\nhalt", fmt=InstructionFormat.PARCEL)
        _nop, size = decode_at(parcel.image, parcel.fmt, 0)
        assert size == 2
        _li, size = decode_at(parcel.image, parcel.fmt, 2)
        assert size == 4


class TestDelayRegionEnd:
    def test_walks_delay_instructions(self, program):
        # Three delay slots after the PBR at 0: nop, li, nop -> ends at 16.
        end = delay_region_end(program.image, program.fmt, 4, 3)
        assert end == 16

    def test_zero_delay(self, program):
        assert delay_region_end(program.image, program.fmt, 4, 0) == 4

    def test_parcel_format_sizes(self):
        parcel = assemble(
            "pbra b0, 2\nnop\nli r1, 5\nhalt", fmt=InstructionFormat.PARCEL
        )
        # delay slots: nop (2 bytes) + li (4 bytes), starting at 2
        assert delay_region_end(parcel.image, parcel.fmt, 2, 2) == 8


class TestFetchStats:
    def test_defaults(self):
        stats = FetchStats()
        assert stats.instructions_supplied == 0
        assert stats.prefetch_promotions == 0
        assert stats.squashed_instructions == 0
