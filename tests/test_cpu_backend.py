"""Tests of issue-stall accounting and PBR timing in the back-end."""

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.simulator import simulate


def run(source, config):
    return simulate(config, assemble(source))


FAST = MachineConfig.pipe("16-16", 512, memory_access_time=1)
SLOW = MachineConfig.pipe("16-16", 512, memory_access_time=6)


class TestLoadLatencyStalls:
    def test_immediate_use_stalls(self):
        """popq right after ld waits out the memory round trip."""
        source = """
            li r1, 0
            ld r1, value
            popq r2
            halt
            value: .word 7
        """
        result = run(source, SLOW)
        assert result.stalls["ldq_empty"] >= 6

    def test_distance_hides_latency(self):
        """Scheduling independent work between ld and popq (the PIPE
        compiler idiom) absorbs the latency in useful instructions.

        Data-priority keeps the measurement about *latency*, not about
        interface contention (covered by the next test).
        """
        from repro.memory.requests import RequestPriority

        config = SLOW.with_overrides(priority=RequestPriority.DATA_FIRST)
        filler = "\n".join(["nop"] * 12)
        source = f"""
            li r1, 0
            ld r1, value
            {filler}
            popq r2
            halt
            value: .word 7
        """
        result = run(source, config)
        immediate = run(
            """
            li r1, 0
            ld r1, value
            popq r2
            halt
            value: .word 7
            """,
            config,
        )
        assert result.stalls["ldq_empty"] == 0
        assert immediate.stalls["ldq_empty"] > 0

    def test_instruction_priority_delays_cold_data(self):
        """With instruction-first priority and a cold cache, the data
        request queues behind the I-fetch stream at the memory
        interface — the contention the paper's queues exist to tolerate."""
        from repro.memory.requests import RequestPriority

        source = """
            li r1, 0
            ld r1, value
            nop
            nop
            nop
            nop
            popq r2
            halt
            value: .word 7
        """
        instruction_first = run(source, SLOW)
        data_first = run(
            source, SLOW.with_overrides(priority=RequestPriority.DATA_FIRST)
        )
        assert (
            instruction_first.stalls["ldq_empty"] > data_first.stalls["ldq_empty"]
        )


class TestQueueBackPressure:
    def test_laq_fills_under_slow_memory(self):
        """More loads than the LAQ holds: issue stalls until the memory
        drains the queue.  The LDQ is kept large enough for all of them,
        as any legal PIPE program must (see the deadlock test below)."""
        loads = "\n".join(["ld r1, value"] * 16)
        drains = "\n".join(["popq r2"] * 16)
        source = f"""
            li r1, 0
            {loads}
            {drains}
            halt
            value: .word 1
        """
        result = run(
            source,
            MachineConfig.pipe(
                "16-16", 512, memory_access_time=6, laq_capacity=2, ldq_capacity=16
            ),
        )
        assert result.stalls["laq_full"] > 0

    def test_overcommitted_ldq_is_a_detected_deadlock(self):
        """A program with more unconsumed loads in flight than the LDQ
        can hold wedges a decoupled-queue machine: the LAQ cannot drain
        into a full LDQ, and the LDQ cannot drain because issue is
        blocked on the full LAQ.  The simulator must diagnose this, not
        spin forever."""
        import pytest

        from repro.core.simulator import DeadlockError, Simulator

        loads = "\n".join(["ld r1, value"] * 16)
        drains = "\n".join(["popq r2"] * 16)
        source = f"""
            li r1, 0
            {loads}
            {drains}
            halt
            value: .word 1
        """
        from repro.asm import assemble

        simulator = Simulator(
            MachineConfig.pipe(
                "16-16", 512, memory_access_time=6, laq_capacity=2, ldq_capacity=2
            ),
            assemble(source),
        )
        simulator.DEADLOCK_CYCLES = 500  # keep the test fast
        with pytest.raises(DeadlockError, match="no progress"):
            simulator.run()

    def test_store_queue_back_pressure(self):
        stores = "\n".join(["st r1, sink\npushq r2"] * 12)
        source = f"""
            li r1, 0
            li r2, 9
            {stores}
            halt
            sink: .word 0
        """
        result = run(
            source,
            MachineConfig.pipe(
                "16-16", 512, memory_access_time=6, saq_capacity=2, sdq_capacity=2
            ),
        )
        assert result.stalls["saq_full"] + result.stalls["sdq_full"] > 0

    def test_big_queues_remove_pressure(self):
        stores = "\n".join(["st r1, sink\npushq r2"] * 6)
        source = f"""
            li r1, 0
            li r2, 9
            {stores}
            halt
            sink: .word 0
        """
        relaxed = run(
            source,
            MachineConfig.pipe("16-16", 512, memory_access_time=1,
                               saq_capacity=32, sdq_capacity=32),
        )
        assert relaxed.stalls["saq_full"] == 0


class TestBranchTiming:
    def test_delay_slots_cover_resolution(self):
        """delay >= 2 hides the 2-cycle condition evaluation."""
        source = """
            li r1, 5
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 2
            nop
            nop
            halt
        """
        result = run(source, FAST)
        assert result.stalls["branch_unresolved"] == 0

    def test_zero_delay_pays_resolution(self):
        source = """
            li r1, 5
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 0
            halt
        """
        result = run(source, FAST)
        # one stall cycle per taken iteration (resolution latency 2,
        # delay 0 -> the issue point waits one cycle past the PBR)
        assert result.stalls["branch_unresolved"] >= 4

    def test_resolution_latency_configurable(self):
        source = """
            li r1, 5
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 2
            nop
            nop
            halt
        """
        slow_resolve = run(
            source, FAST.with_overrides(branch_resolution_latency=5)
        )
        assert slow_resolve.stalls["branch_unresolved"] > 0

    def test_branch_counts(self):
        source = """
            li r1, 3
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 2
            nop
            nop
            halt
        """
        result = run(source, FAST)
        assert result.branches == 3
        assert result.branches_taken == 2


class TestHaltDrain:
    def test_pending_stores_complete_before_end(self):
        """Cycles include draining the store queues after HALT issues."""
        source = """
            li r1, 0
            li r2, 1
            st r1, sink
            pushq r2
            halt
            sink: .word 0
        """
        fast = run(source, FAST)
        slow = run(source, SLOW)
        assert slow.cycles > fast.cycles  # the drain pays the access time
        assert slow.stores == 1
