"""Unit + property tests for the assembly parser and expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.errors import AsmError
from repro.asm.parser import (
    DirectiveStmt,
    ExprOperand,
    FloatOperand,
    InstructionStmt,
    LabelDef,
    RegisterOperand,
    parse_expression,
    parse_source,
)


class TestStatements:
    def test_instruction_with_registers(self):
        (stmt,) = parse_source("add r1, r2, r3")
        assert isinstance(stmt, InstructionStmt)
        assert stmt.mnemonic == "add"
        assert [op.index for op in stmt.operands] == [1, 2, 3]

    def test_label_then_instruction_same_line(self):
        label, instr = parse_source("loop: nop")
        assert isinstance(label, LabelDef) and label.name == "loop"
        assert isinstance(instr, InstructionStmt) and instr.mnemonic == "nop"

    def test_multiple_labels_one_line(self):
        a, b, instr = parse_source("a: b: halt")
        assert a.name == "a" and b.name == "b"
        assert instr.mnemonic == "halt"

    def test_comments_stripped(self):
        statements = parse_source("nop ; trailing\n# full line\n; another\nhalt")
        assert [s.mnemonic for s in statements] == ["nop", "halt"]

    def test_directive(self):
        (stmt,) = parse_source(".org 0x100")
        assert isinstance(stmt, DirectiveStmt)
        assert stmt.name == ".org"

    def test_float_operand(self):
        (stmt,) = parse_source(".float 1.5, 2.25")
        assert all(isinstance(op, FloatOperand) for op in stmt.operands)
        assert [op.value for op in stmt.operands] == [1.5, 2.25]

    def test_line_numbers_recorded(self):
        statements = parse_source("nop\n\nhalt", source="f.s")
        assert statements[0].line == 1
        assert statements[1].line == 3
        assert statements[0].source == "f.s"

    def test_branch_register_operand(self):
        (stmt,) = parse_source("lbr b2, 100")
        operand = stmt.operands[0]
        assert isinstance(operand, RegisterOperand)
        assert operand.kind == "branch" and operand.index == 2

    def test_symbol_operand_is_expression(self):
        (stmt,) = parse_source("ld r1, buffer+8")
        assert isinstance(stmt.operands[1], ExprOperand)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "add r1 r2, r3",  # missing comma
            "add r1,, r2",  # double comma
            "123 r1",  # number as mnemonic
            "add r1, $",  # bad character
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(AsmError):
            parse_source(text)

    def test_error_carries_location(self):
        with pytest.raises(AsmError) as excinfo:
            parse_source("nop\nadd r1 r2, r3", source="t.s")
        assert excinfo.value.line == 2
        assert excinfo.value.source == "t.s"


class TestExpressions:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1+2*3", 7),
            ("(1+2)*3", 9),
            ("-4+10", 6),
            ("0x10", 16),
            ("0b101", 5),
            ("1<<4", 16),
            ("256>>2", 64),
            ("0xFF & 0x0F", 0x0F),
            ("0xF0 | 0x0F", 0xFF),
            ("10-3-2", 5),  # left associative
            ("100/7", 14),  # floor division
            ("~0 & 0xFF", 0xFF),
        ],
    )
    def test_arithmetic(self, text, expected):
        assert parse_expression(text).evaluate({}) == expected

    def test_symbols(self):
        expr = parse_expression("base + 4*index")
        assert expr.evaluate({"base": 100, "index": 3}) == 112
        assert expr.free_symbols() == {"base", "index"}

    def test_undefined_symbol_raises_keyerror(self):
        with pytest.raises(KeyError):
            parse_expression("nothing").evaluate({})

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            parse_expression("1/0").evaluate({})

    def test_trailing_tokens_rejected(self):
        with pytest.raises(AsmError):
            parse_expression("1 2")

    def test_unbalanced_parens(self):
        with pytest.raises(AsmError):
            parse_expression("(1+2")

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=100),
    )
    def test_matches_python_semantics(self, a, b, c):
        text = f"{a} + {b} * {c} - ({a} / {c})"
        assert parse_expression(text).evaluate({}) == a + b * c - (a // c)
