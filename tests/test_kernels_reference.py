"""The reference interpreter vs hand-written NumPy models.

The reference interpreter is the oracle for both simulators, so a few
kernels are checked here against *independent* NumPy float32
implementations (guarding against a DSL-definition bug making compiler
and interpreter agree on the wrong answer).
"""

import numpy as np
import pytest

from repro.kernels.loops import make_kernels, make_shared_arrays
from repro.kernels.reference import f32, run_kernel_reference


def initial_arrays():
    arrays = {}
    for decl in make_shared_arrays():
        values = decl.initial_values()
        if decl.kind == "float":
            arrays[decl.name] = [f32(float(v)) for v in values]
        else:
            arrays[decl.name] = [int(v) for v in values]
    return arrays


def np_arrays(arrays):
    return {
        name: np.array(values, dtype=np.float32 if isinstance(values[0], float)
                       else np.int64)
        for name, values in arrays.items()
    }


def kernel(number):
    return next(k for k in make_kernels(scale=0.2) if k.number == number)


def assert_close(reference_list, numpy_array):
    got = np.array(reference_list, dtype=np.float32)
    np.testing.assert_allclose(got, numpy_array, rtol=2e-6, atol=1e-30)


class TestAgainstNumpy:
    def test_ll1_hydro(self):
        k = kernel(1)
        arrays = initial_arrays()
        n = np_arrays(arrays)
        run_kernel_reference(k, arrays)
        q = np.float32(k.consts["q"])
        r = np.float32(k.consts["r"])
        t = np.float32(k.consts["t"])
        x, y, z = n["x"].copy(), n["y"], n["z"]
        for i in range(k.iterations):
            x[i] = q + y[i] * (r * z[i + 10] + t * z[i + 11])
        assert_close(arrays["x"], x)

    def test_ll3_inner_product(self):
        k = kernel(3)
        arrays = initial_arrays()
        n = np_arrays(arrays)
        scalars = run_kernel_reference(k, arrays)
        acc = np.float32(0.0)
        for i in range(k.iterations):
            acc = np.float32(acc + np.float32(n["z"][i] * n["x"][i]))
        assert scalars["q3"] == pytest.approx(float(acc), rel=2e-6)

    def test_ll5_tridiagonal(self):
        k = kernel(5)
        arrays = initial_arrays()
        n = np_arrays(arrays)
        run_kernel_reference(k, arrays)
        x, y, z = n["x"].copy(), n["y"], n["z"]
        for i in range(k.iterations):
            x[i + 1] = z[i + 1] * (y[i + 1] - x[i])
        assert_close(arrays["x"], x)

    def test_ll11_first_sum(self):
        k = kernel(11)
        arrays = initial_arrays()
        n = np_arrays(arrays)
        run_kernel_reference(k, arrays)
        x, y = n["x"].copy(), n["y"]
        for i in range(k.iterations):
            x[i + 1] = x[i] + y[i + 1]
        assert_close(arrays["x"], x)

    def test_ll12_first_difference(self):
        k = kernel(12)
        arrays = initial_arrays()
        n = np_arrays(arrays)
        run_kernel_reference(k, arrays)
        x, y = n["x"].copy(), n["y"]
        for i in range(k.iterations):
            x[i] = y[i + 1] - y[i]
        assert_close(arrays["x"], x)

    def test_ll14_pic_gather(self):
        k = kernel(14)
        arrays = initial_arrays()
        n = np_arrays(arrays)
        ix = arrays["ix"]
        run_kernel_reference(k, arrays)
        vx, xx, ex, rh = (n["vx"].copy(), n["xx"].copy(), n["ex"], n["rh"].copy())
        flx = np.float32(k.consts["flx"])
        for i in range(k.iterations):
            vx[i] = vx[i] + ex[ix[i]]
            xx[i] = xx[i] + np.float32(vx[i] * flx)
            rh[ix[i]] = rh[ix[i]] + flx
        assert_close(arrays["vx"], vx)
        assert_close(arrays["xx"], xx)
        assert_close(arrays["rh"], rh)


class TestInterpreterGuards:
    def test_bounds_checked(self):
        from repro.kernels.dsl import Affine, Kernel, Load, Store

        bad = Kernel(
            number=1,
            name="oob",
            iterations=10,
            statements=(Store("x", Affine(), Load("x", Affine(offset=100))),),
        )
        with pytest.raises(IndexError):
            run_kernel_reference(bad, {"x": [0.0] * 20})

    def test_f32_rounds(self):
        assert f32(0.1) != 0.1  # 0.1 is not representable in float32
        assert f32(0.5) == 0.5
