"""Unit + property tests for the architectural queues."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.queues import ArchitecturalQueue, QueueEmptyError, QueueFullError


class TestBasics:
    def test_fifo_order(self):
        queue = ArchitecturalQueue("q", 4)
        for value in (1, 2, 3):
            queue.push(value)
        assert [queue.pop() for _ in range(3)] == [1, 2, 3]

    def test_capacity_enforced(self):
        queue = ArchitecturalQueue("q", 2)
        queue.push(1)
        queue.push(2)
        assert queue.is_full
        with pytest.raises(QueueFullError):
            queue.push(3)

    def test_pop_empty(self):
        queue = ArchitecturalQueue("q", 2)
        with pytest.raises(QueueEmptyError):
            queue.pop()

    def test_peek(self):
        queue = ArchitecturalQueue("q", 2)
        queue.push(9)
        assert queue.peek() == 9
        assert len(queue) == 1  # peek does not consume

    def test_peek_empty(self):
        with pytest.raises(QueueEmptyError):
            ArchitecturalQueue("q", 1).peek()

    def test_unbounded(self):
        queue = ArchitecturalQueue("q")
        for value in range(1000):
            queue.push(value)
        assert not queue.is_full
        assert queue.free_slots is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ArchitecturalQueue("q", 0)

    def test_clear(self):
        queue = ArchitecturalQueue("q", 4)
        queue.push(1)
        queue.clear()
        assert queue.is_empty


class TestStatistics:
    def test_counters(self):
        queue = ArchitecturalQueue("q", 8)
        for value in range(5):
            queue.push(value)
        for _ in range(2):
            queue.pop()
        assert queue.total_pushes == 5
        assert queue.total_pops == 2
        assert queue.max_occupancy == 5

    def test_free_slots(self):
        queue = ArchitecturalQueue("q", 3)
        queue.push(1)
        assert queue.free_slots == 2


class TestPropertyFifo:
    @given(st.lists(st.tuples(st.booleans(), st.integers()), max_size=200))
    def test_matches_model(self, operations):
        """Random push/pop interleavings behave exactly like a list."""
        queue = ArchitecturalQueue("q", 16)
        model: list[int] = []
        for is_push, value in operations:
            if is_push:
                if len(model) < 16:
                    queue.push(value)
                    model.append(value)
                else:
                    with pytest.raises(QueueFullError):
                        queue.push(value)
            else:
                if model:
                    assert queue.pop() == model.pop(0)
                else:
                    with pytest.raises(QueueEmptyError):
                        queue.pop()
            assert len(queue) == len(model)
            assert queue.is_empty == (not model)
