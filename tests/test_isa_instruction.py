"""Unit tests for the Instruction value type."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class TestConstruction:
    def test_alu_rr(self):
        instr = Instruction.alu_rr(Opcode.ADD, 1, 2, 3)
        assert (instr.rd, instr.rs1, instr.rs2) == (1, 2, 3)
        assert instr.parcels == 1

    def test_alu_rr_rejects_wrong_class(self):
        with pytest.raises(ValueError):
            Instruction.alu_rr(Opcode.ADDI, 1, 2, 3)

    def test_alu_ri(self):
        instr = Instruction.alu_ri(Opcode.ADDI, 1, 2, -5)
        assert instr.imm_signed == -5
        assert instr.imm == 0xFFFB
        assert instr.parcels == 2

    def test_load_displacement(self):
        instr = Instruction.load(3, 100)
        assert instr.op == Opcode.LD
        assert instr.rs1 == 3
        assert instr.imm_signed == 100

    def test_store_indexed(self):
        instr = Instruction.store_indexed(2, 4)
        assert instr.op == Opcode.STX
        assert (instr.rs1, instr.rs2) == (2, 4)

    def test_branch(self):
        instr = Instruction.branch(Opcode.PBRNE, 1, 2, 5)
        assert instr.breg == 1
        assert instr.rs1 == 2
        assert instr.delay == 5
        assert instr.is_branch

    def test_branch_delay_range(self):
        with pytest.raises(ValueError):
            Instruction.branch(Opcode.PBRA, 0, 0, 8)

    def test_nop_and_halt(self):
        assert Instruction.nop().op == Opcode.NOP
        assert Instruction.halt().op == Opcode.HALT

    def test_load_branch_register(self):
        instr = Instruction.load_branch_register(3, 0x1234)
        assert instr.breg == 3
        assert instr.imm == 0x1234


class TestValidation:
    def test_field_range(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, a=8)

    def test_immediate_range(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LI, a=1, imm=70000)
        with pytest.raises(ValueError):
            Instruction(Opcode.LI, a=1, imm=-40000)

    def test_negative_immediate_normalised(self):
        instr = Instruction(Opcode.LI, a=1, imm=-1)
        assert instr.imm == 0xFFFF
        assert instr.imm_signed == -1

    def test_one_parcel_rejects_immediate(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, a=1, imm=5)


class TestDisassembly:
    @pytest.mark.parametrize(
        "instr,expected",
        [
            (Instruction.alu_rr(Opcode.ADD, 1, 2, 3), "add r1, r2, r3"),
            (Instruction.alu_ri(Opcode.ADDI, 1, 2, 5), "addi r1, r2, 5"),
            (Instruction.alu_ri(Opcode.LI, 4, 0, -7), "li r4, -7"),
            (Instruction.load(3, 8), "ld r3, 8"),
            (Instruction.load_indexed(1, 2), "ldx r1, r2"),
            (Instruction.store(5, -4), "st r5, -4"),
            (Instruction.load_branch_register(0, 64), "lbr b0, 64"),
            (Instruction.branch(Opcode.PBRA, 2, 0, 3), "pbra b2, 3"),
            (Instruction.branch(Opcode.PBRNE, 0, 6, 4), "pbrne b0, r6, 4"),
            (Instruction.nop(), "nop"),
            (Instruction.halt(), "halt"),
        ],
    )
    def test_disassemble(self, instr, expected):
        assert instr.disassemble() == expected

    def test_disassembly_reassembles(self):
        """Every disassembled form is valid assembler input."""
        from repro.asm import assemble

        instructions = [
            Instruction.alu_rr(Opcode.XOR, 1, 2, 3),
            Instruction.alu_ri(Opcode.SLLI, 1, 1, 2),
            Instruction.load(0, 16),
            Instruction.store_indexed(2, 3),
            Instruction.branch(Opcode.PBRGE, 1, 4, 2),
            Instruction.halt(),
        ]
        source = "\n".join(i.disassemble() for i in instructions)
        program = assemble(source)
        assert [i for _a, i in program.layout] == instructions
