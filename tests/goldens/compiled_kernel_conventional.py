def __kernel(sim):
    now = 0
    memory = sim.memory
    mem_stats = sim.memory.stats
    external = sim.memory.external
    fpu = sim.memory.fpu
    engine = sim.engine
    engine_stats = sim.engine.stats
    frontend = sim.frontend
    backend = sim.backend
    clock = sim.clock
    laq_items = sim.engine.laq._items
    ldq_items = sim.engine.ldq._items
    saq_items = sim.engine.saq._items
    sdq_items = sim.engine.sdq._items
    ldq_push = sim.engine.ldq.push
    backend_stalls = sim.backend.stalls
    backend_state = sim.backend.state
    backend_env = sim.backend._env
    effects_memo = {}
    frontend_next_instruction = sim.frontend.next_instruction
    frontend_note_branch = sim.frontend.note_branch
    frontend_branch_resolved = sim.frontend.branch_resolved
    frontend_redirect = sim.frontend.redirect
    frontend_halt = sim.frontend.halt
    frontend_notify = sim.frontend.notify_accepted
    engine_poll = sim.engine.poll_requests
    engine_notify = sim.engine.notify_accepted
    memory_begin = sim.memory.begin_cycle
    external_accept = sim.memory.external.accept
    fpu_can_accept = sim.memory.fpu.can_accept
    fpu_accept = sim.memory.fpu.accept
    replay_on_backedge = sim.replay_controller.on_backedge
    replay_check_runaway = sim.replay_controller.check_runaway
    fe_stats = sim.frontend.stats
    icache_stats = sim.frontend.cache.stats
    icache_unit = sim.frontend.cache
    fe_memo = {}
    res_memo = {}
    frontend_maybe_promote = sim.frontend._maybe_promote
    frontend_maybe_request = sim.frontend._maybe_request
    dispatch_get = _dispatch_for(sim).handler_for
    last_ticks = clock.ticks
    last_progress_at = 0
    while True:
        ticks_before = clock.ticks
        conflicts_before = mem_stats.acceptance_conflicts
        # memory.begin_cycle(now)
        if external.in_flight or fpu._ops_pending or fpu._results_ready or fpu._result_loads:
            memory_begin(now)
        else:
            external._accepted_this_cycle = False
        # engine.update(now)
        ifl = engine._in_flight_loads
        while ifl and ifl[0].arrived and len(ldq_items) < 8:
            ldq_push(ifl.popleft().value)
        if len(ifl) > engine_stats.ldq_max_wait_entries:
            engine_stats.ldq_max_wait_entries = len(ifl)
        # frontend.update(now)
        f_req = frontend._request
        if f_req is None:
            if not frontend._halted:
                f_pc = frontend._pc
                if fe_memo.get(f_pc) != icache_unit._epoch:
                    frontend_maybe_request(now)
                    if frontend._request is None:
                        fe_memo[f_pc] = icache_unit._epoch
        elif not f_req.demand:
            frontend_maybe_promote()
        # backend.step(now)
        if not backend.halted:
            ok = True
            pending = backend._pending
            if pending is not None:
                if not pending.notified and now >= pending.resolve_at:
                    pending.notified = True
                    clock.ticks += 1
                    frontend_branch_resolved(pending.taken)
                    if not pending.taken:
                        backend._pending = None
                        pending = None
                if pending is not None and pending.slots_remaining == 0:
                    if now < pending.resolve_at:
                        backend_stalls['branch_unresolved'] += 1
                        backend.last_stall_reason = 'branch_unresolved'
                        ok = False
                    else:
                        clock.ticks += 1
                        target = pending.target
                        frontend_redirect(target, now)
                        backend._pending = None
                        pending = None
                        last_pc = backend.last_pc
                        if last_pc is not None and target < last_pc:
                            backend.replay_backedge = target
            if ok:
                f_pc = frontend._pc
                entry = res_memo.get(f_pc)
                if entry is not None and entry[0] == icache_unit._epoch:
                    fetched = entry[1]
                else:
                    fetched = frontend_next_instruction()
                    res_memo[f_pc] = (icache_unit._epoch, fetched)
                if fetched is None:
                    backend_stalls['frontend_empty'] += 1
                    backend.last_stall_reason = 'frontend_empty'
                else:
                    pc, instruction, size = fetched
                    entry = effects_memo.get(id(instruction))
                    if entry is None:
                        _fx = queue_effects(instruction)
                        entry = (instruction, _fx.pops_ldq, _fx.pushes_laq, _fx.pushes_saq, _fx.pushes_sdq, instruction.op.is_branch, dispatch_get(instruction))
                        effects_memo[id(instruction)] = entry
                    if entry[5] and pending is not None:
                        backend_stalls['branch_overlap'] += 1
                        backend.last_stall_reason = 'branch_overlap'
                    elif entry[1] and not ldq_items:
                        backend_stalls['ldq_empty'] += 1
                        backend.last_stall_reason = 'ldq_empty'
                    elif entry[2] and len(laq_items) >= 8:
                        backend_stalls['laq_full'] += 1
                        backend.last_stall_reason = 'laq_full'
                    elif entry[3] and len(saq_items) >= 8:
                        backend_stalls['saq_full'] += 1
                        backend.last_stall_reason = 'saq_full'
                    elif entry[4] and len(sdq_items) >= 8:
                        backend_stalls['sdq_full'] += 1
                        backend.last_stall_reason = 'sdq_full'
                    else:
                        outcome = entry[6](backend_state, backend_env)
                        if backend.issue_log is not None:
                            backend.issue_log.append(("i", pc, instruction, outcome))
                        clock.ticks += 1
                        icache_stats.hits += 1
                        frontend._pc = pc + size
                        fe_stats.instructions_supplied += 1
                        backend.instructions += 1
                        backend.last_pc = pc
                        if outcome.halted:
                            backend.halted = True
                        elif outcome.is_branch:
                            backend.branches += 1
                            if outcome.branch_taken:
                                backend.branches_taken += 1
                            backend._pending = _PendingBranch(target=outcome.branch_target, taken=outcome.branch_taken, resolve_at=now + 2, slots_remaining=outcome.branch_delay)
                            frontend_note_branch(pc, pc + size, outcome.branch_delay, outcome.branch_target)
                        elif pending is not None:
                            pending.slots_remaining -= 1
        if backend.halted:
            frontend_halt()
        # frontend.post_issue(now)
        f_req = frontend._request
        if f_req is None:
            if not frontend._halted:
                f_pc = frontend._pc
                if fe_memo.get(f_pc) != icache_unit._epoch:
                    frontend_maybe_request(now)
                    if frontend._request is None:
                        fe_memo[f_pc] = icache_unit._epoch
        elif not f_req.demand:
            frontend_maybe_promote()
        # memory.end_cycle(now)
        if frontend._request is not None and not frontend._request_accepted:
            if frontend._halted:
                frontend._request = None
                f_reqs = ()
            else:
                f_reqs = (frontend._request,)
        else:
            f_reqs = ()
        if laq_items or (saq_items and sdq_items):
            e_reqs = engine_poll(now)
        else:
            e_reqs = ()
        if f_reqs or e_reqs:
            n = len(f_reqs) + len(e_reqs)
            if n == 1:
                if f_reqs:
                    request = f_reqs[0]
                    notify = frontend_notify
                else:
                    request = e_reqs[0]
                    notify = engine_notify
                fpu_hit = _is_fpu(request.address)
                accepted = False
                if fpu_hit:
                    if fpu_can_accept(request, now):
                        fpu_accept(request, now)
                        accepted = True
                elif not (external._accepted_this_cycle or external.in_flight):
                    external_accept(request, now)
                    accepted = True
                if accepted:
                    notify(request, now)
                    mem_stats.output_bus_busy_cycles += 1
                    kind = request.kind
                    if fpu_hit:
                        if kind is K_STORE:
                            mem_stats.fpu_stores_accepted += 1
                        else:
                            mem_stats.fpu_loads_accepted += 1
                    else:
                        if kind is K_LOAD:
                            mem_stats.loads_accepted += 1
                        elif kind is K_STORE:
                            mem_stats.stores_accepted += 1
                        elif request.demand:
                            mem_stats.ifetch_demand_accepted += 1
                        else:
                            mem_stats.ifetch_prefetch_accepted += 1
            else:
                mem_stats.acceptance_conflicts += 1
                memory.last_conflict_candidates = n
                cands = [(request, frontend_notify) for request in f_reqs]
                for request in e_reqs:
                    cands.append((request, engine_notify))
                cands.sort(key=lambda item: _acc_order(item[0], _PRIORITY))
                for request, notify in cands:
                    fpu_hit = _is_fpu(request.address)
                    if fpu_hit:
                        if not fpu_can_accept(request, now):
                            continue
                        fpu_accept(request, now)
                    elif external._accepted_this_cycle or external.in_flight:
                        continue
                    else:
                        external_accept(request, now)
                    notify(request, now)
                    mem_stats.output_bus_busy_cycles += 1
                    kind = request.kind
                    if fpu_hit:
                        if kind is K_STORE:
                            mem_stats.fpu_stores_accepted += 1
                        else:
                            mem_stats.fpu_loads_accepted += 1
                    else:
                        if kind is K_LOAD:
                            mem_stats.loads_accepted += 1
                        elif kind is K_STORE:
                            mem_stats.stores_accepted += 1
                        elif request.demand:
                            mem_stats.ifetch_demand_accepted += 1
                        else:
                            mem_stats.ifetch_prefetch_accepted += 1
                    break
        now += 1
        if backend.halted and not laq_items and not saq_items and not sdq_items and not engine._in_flight_loads and not external.in_flight and not fpu._ops_pending and not fpu._results_ready and not fpu._result_loads:
            break
        if backend.replay_backedge is not None:
            target = backend.replay_backedge
            backend.replay_backedge = None
            jumped = replay_on_backedge(target, now)
            if jumped != now:
                now = jumped
                last_ticks = clock.ticks
                last_progress_at = now & -256
        if not now & 255:
            ticks = clock.ticks
            if ticks != last_ticks:
                last_ticks = ticks
                last_progress_at = now
            elif now - last_progress_at > 20000:
                raise sim._deadlock(now, last_progress_at, False)
            replay_check_runaway()
        if now >= 500000000:
            raise sim._timeout(now, False)
        if clock.ticks == ticks_before:
            wake = IDLE
            for request in external.in_flight:
                ready = request.ready_at
                if ready is not None and ready < wake:
                    wake = ready
            _ops = fpu._ops_pending
            if _ops and _ops[0] < wake:
                wake = _ops[0]
            bpending = backend._pending
            if bpending is not None and not bpending.notified and bpending.resolve_at < wake:
                wake = bpending.resolve_at
            ticks = clock.ticks
            if ticks != last_ticks:
                first_snapshot = (now | 255) + 1
                fire_base = first_snapshot
            else:
                first_snapshot = None
                fire_base = last_progress_at
            fire = -(-(fire_base + 20001) // 256) * 256
            if fire <= wake and fire <= 500000000:
                target = fire
                fate = 1
            elif 500000000 <= wake:
                target = 500000000
                fate = 2
            else:
                target = wake
                fate = 0
            if target > now:
                span = target - now
                stall_reason = backend.last_stall_reason if not backend.halted else None
                if stall_reason is not None:
                    backend_stalls[stall_reason] += span
                conflict = mem_stats.acceptance_conflicts > conflicts_before
                if conflict:
                    mem_stats.acceptance_conflicts += span
                if external.in_flight:
                    external.busy_cycles += span
                if first_snapshot is not None and first_snapshot <= target:
                    last_ticks = ticks
                    last_progress_at = first_snapshot
                now = target
                if fate == 1:
                    raise sim._deadlock(now, last_progress_at, True)
                if fate == 2:
                    raise sim._timeout(now, True)
    return now
