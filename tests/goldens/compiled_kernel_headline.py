def __kernel(sim):
    now = 0
    memory = sim.memory
    mem_stats = sim.memory.stats
    external = sim.memory.external
    fpu = sim.memory.fpu
    engine = sim.engine
    engine_stats = sim.engine.stats
    frontend = sim.frontend
    backend = sim.backend
    clock = sim.clock
    laq_items = sim.engine.laq._items
    ldq_items = sim.engine.ldq._items
    saq_items = sim.engine.saq._items
    sdq_items = sim.engine.sdq._items
    ldq_push = sim.engine.ldq.push
    backend_stalls = sim.backend.stalls
    backend_state = sim.backend.state
    backend_env = sim.backend._env
    effects_memo = {}
    frontend_note_branch = sim.frontend.note_branch
    frontend_branch_resolved = sim.frontend.branch_resolved
    frontend_redirect = sim.frontend.redirect
    frontend_halt = sim.frontend.halt
    frontend_notify = sim.frontend.notify_accepted
    engine_poll = sim.engine.poll_requests
    engine_notify = sim.engine.notify_accepted
    memory_begin = sim.memory.begin_cycle
    external_accept = sim.memory.external.accept
    fpu_can_accept = sim.memory.fpu.can_accept
    fpu_accept = sim.memory.fpu.accept
    replay_on_backedge = sim.replay_controller.on_backedge
    replay_check_runaway = sim.replay_controller.check_runaway
    fe_stats = sim.frontend.stats
    icache_stats = sim.frontend.cache.stats
    icache_unit = sim.frontend.cache
    cache_probe = sim.frontend.cache.probe
    pipe_iq = sim.frontend._iq
    pipe_clock = sim.frontend._clock
    pd_table = sim.frontend.predecode._table
    probe_memo = {}
    frontend_promote_starving = sim.frontend._promote_if_starving
    frontend_predecode_at = sim.frontend.predecode.at
    frontend_start_fill = sim.frontend._start_fill
    dispatch_get = _dispatch_for(sim).handler_for
    last_ticks = clock.ticks
    last_progress_at = 0
    while True:
        ticks_before = clock.ticks
        conflicts_before = mem_stats.acceptance_conflicts
        # memory.begin_cycle(now)
        if external.in_flight or fpu._ops_pending or fpu._results_ready or fpu._result_loads:
            memory_begin(now)
        else:
            external._accepted_this_cycle = False
        # engine.update(now)
        ifl = engine._in_flight_loads
        while ifl and ifl[0].arrived and len(ldq_items) < 8:
            ldq_push(ifl.popleft().value)
        if len(ifl) > engine_stats.ldq_max_wait_entries:
            engine_stats.ldq_max_wait_entries = len(ifl)
        # frontend.update(now)
        f_req = frontend._request
        if f_req is not None and not frontend._request_discarded and not f_req.demand and not pipe_iq:
            frontend_promote_starving()
        if not pipe_iq and frontend._iqb_loaded and frontend._iqb_read_pc < frontend._iqb_base + 16:
            t_moved = 0
            t_line_end = frontend._iqb_base + 16
            t_span = frontend._span_pc
            t_ok = True
            if t_span is not None:
                if frontend._iqb_base != (t_span + 2) - ((t_span + 2) % 16):
                    t_ok = False
                else:
                    t_entry = pd_table.get(t_span, False)
                    if t_entry is False:
                        try:
                            t_entry = frontend_predecode_at(t_span)
                        except DecodeError:
                            t_entry = None
                    if t_entry is None or frontend._iqb_valid_end < t_span + t_entry[1]:
                        t_ok = False
                    else:
                        t_size = t_entry[1]
                        pipe_iq.append((t_span, t_entry[0], t_size))
                        pipe_clock.ticks += 1
                        t_moved = t_size
                        frontend._iq_next_pc = t_span + t_size
                        frontend._iqb_read_pc = t_span + t_size
                        frontend._span_pc = None
            elif frontend._iqb_read_pc != frontend._iq_next_pc:
                t_ok = False
            if t_ok:
                while True:
                    t_pc = frontend._iq_next_pc
                    if t_pc >= t_line_end or t_pc >= frontend._iqb_valid_end:
                        break
                    t_entry = pd_table.get(t_pc, False)
                    if t_entry is False:
                        try:
                            t_entry = frontend_predecode_at(t_pc)
                        except DecodeError:
                            t_entry = None
                    if t_entry is None:
                        break
                    t_size = t_entry[1]
                    if t_pc + t_size > t_line_end:
                        if t_moved == 0 and frontend._iqb_valid_end >= t_line_end:
                            frontend._span_pc = t_pc
                            frontend._iqb_read_pc = t_line_end
                            pipe_clock.ticks += 1
                        break
                    if t_pc + t_size > frontend._iqb_valid_end:
                        break
                    if t_moved + t_size > 16:
                        break
                    pipe_iq.append((t_pc, t_entry[0], t_size))
                    pipe_clock.ticks += 1
                    t_moved += t_size
                    frontend._iq_next_pc = t_pc + t_size
                    frontend._iqb_read_pc = t_pc + t_size
                frontend._iq_bytes = t_moved
        if not frontend._halted:
            if frontend._request is None or frontend._request_discarded:
                branch = frontend._branch
                if branch is not None and branch.resolved and branch.taken and frontend._iq_next_pc >= branch.delay_end_pc:
                    t_target = branch.target
                    if not (frontend._iqb_loaded and frontend._iqb_base == t_target - (t_target % 16) and frontend._iqb_read_pc <= t_target):
                        t_start = t_target
                        t_line = t_start - (t_start % 16)
                        if probe_memo.get(t_line) == icache_unit._epoch or cache_probe(t_line, 16):
                            probe_memo[t_line] = icache_unit._epoch
                            icache_stats.hits += 1
                            pipe_clock.ticks += 1
                            frontend._iqb_loaded = True
                            frontend._iqb_base = t_line
                            frontend._iqb_read_pc = t_start
                            frontend._iqb_valid_end = t_line + 16
                        else:
                            frontend_start_fill(t_start, now)
                elif not frontend._iqb_loaded or frontend._iqb_read_pc >= frontend._iqb_base + 16:
                    t_span = frontend._span_pc
                    if t_span is not None:
                        t_next = t_span - (t_span % 16) + 16
                        if frontend._iqb_base != t_next or not frontend._iqb_loaded:
                            t_start = t_next
                            t_line = t_start - (t_start % 16)
                            if probe_memo.get(t_line) == icache_unit._epoch or cache_probe(t_line, 16):
                                probe_memo[t_line] = icache_unit._epoch
                                icache_stats.hits += 1
                                pipe_clock.ticks += 1
                                frontend._iqb_loaded = True
                                frontend._iqb_base = t_line
                                frontend._iqb_read_pc = t_start
                                frontend._iqb_valid_end = t_line + 16
                            else:
                                frontend_start_fill(t_start, now)
                    else:
                        t_start = frontend._iq_next_pc
                        t_line = t_start - (t_start % 16)
                        if probe_memo.get(t_line) == icache_unit._epoch or cache_probe(t_line, 16):
                            probe_memo[t_line] = icache_unit._epoch
                            icache_stats.hits += 1
                            pipe_clock.ticks += 1
                            frontend._iqb_loaded = True
                            frontend._iqb_base = t_line
                            frontend._iqb_read_pc = t_start
                            frontend._iqb_valid_end = t_line + 16
                        else:
                            frontend_start_fill(t_start, now)
        if not pipe_iq and frontend._iqb_loaded and frontend._iqb_read_pc < frontend._iqb_base + 16:
            t_moved = 0
            t_line_end = frontend._iqb_base + 16
            t_span = frontend._span_pc
            t_ok = True
            if t_span is not None:
                if frontend._iqb_base != (t_span + 2) - ((t_span + 2) % 16):
                    t_ok = False
                else:
                    t_entry = pd_table.get(t_span, False)
                    if t_entry is False:
                        try:
                            t_entry = frontend_predecode_at(t_span)
                        except DecodeError:
                            t_entry = None
                    if t_entry is None or frontend._iqb_valid_end < t_span + t_entry[1]:
                        t_ok = False
                    else:
                        t_size = t_entry[1]
                        pipe_iq.append((t_span, t_entry[0], t_size))
                        pipe_clock.ticks += 1
                        t_moved = t_size
                        frontend._iq_next_pc = t_span + t_size
                        frontend._iqb_read_pc = t_span + t_size
                        frontend._span_pc = None
            elif frontend._iqb_read_pc != frontend._iq_next_pc:
                t_ok = False
            if t_ok:
                while True:
                    t_pc = frontend._iq_next_pc
                    if t_pc >= t_line_end or t_pc >= frontend._iqb_valid_end:
                        break
                    t_entry = pd_table.get(t_pc, False)
                    if t_entry is False:
                        try:
                            t_entry = frontend_predecode_at(t_pc)
                        except DecodeError:
                            t_entry = None
                    if t_entry is None:
                        break
                    t_size = t_entry[1]
                    if t_pc + t_size > t_line_end:
                        if t_moved == 0 and frontend._iqb_valid_end >= t_line_end:
                            frontend._span_pc = t_pc
                            frontend._iqb_read_pc = t_line_end
                            pipe_clock.ticks += 1
                        break
                    if t_pc + t_size > frontend._iqb_valid_end:
                        break
                    if t_moved + t_size > 16:
                        break
                    pipe_iq.append((t_pc, t_entry[0], t_size))
                    pipe_clock.ticks += 1
                    t_moved += t_size
                    frontend._iq_next_pc = t_pc + t_size
                    frontend._iqb_read_pc = t_pc + t_size
                frontend._iq_bytes = t_moved
        # backend.step(now)
        if not backend.halted:
            ok = True
            pending = backend._pending
            if pending is not None:
                if not pending.notified and now >= pending.resolve_at:
                    pending.notified = True
                    clock.ticks += 1
                    frontend_branch_resolved(pending.taken)
                    if not pending.taken:
                        backend._pending = None
                        pending = None
                if pending is not None and pending.slots_remaining == 0:
                    if now < pending.resolve_at:
                        backend_stalls['branch_unresolved'] += 1
                        backend.last_stall_reason = 'branch_unresolved'
                        ok = False
                    else:
                        clock.ticks += 1
                        target = pending.target
                        frontend_redirect(target, now)
                        backend._pending = None
                        pending = None
                        last_pc = backend.last_pc
                        if last_pc is not None and target < last_pc:
                            backend.replay_backedge = target
            if ok:
                fetched = pipe_iq[0] if pipe_iq else None
                if fetched is None:
                    backend_stalls['frontend_empty'] += 1
                    backend.last_stall_reason = 'frontend_empty'
                else:
                    pc, instruction, size = fetched
                    entry = effects_memo.get(id(instruction))
                    if entry is None:
                        _fx = queue_effects(instruction)
                        entry = (instruction, _fx.pops_ldq, _fx.pushes_laq, _fx.pushes_saq, _fx.pushes_sdq, instruction.op.is_branch, dispatch_get(instruction))
                        effects_memo[id(instruction)] = entry
                    if entry[5] and pending is not None:
                        backend_stalls['branch_overlap'] += 1
                        backend.last_stall_reason = 'branch_overlap'
                    elif entry[1] and not ldq_items:
                        backend_stalls['ldq_empty'] += 1
                        backend.last_stall_reason = 'ldq_empty'
                    elif entry[2] and len(laq_items) >= 8:
                        backend_stalls['laq_full'] += 1
                        backend.last_stall_reason = 'laq_full'
                    elif entry[3] and len(saq_items) >= 8:
                        backend_stalls['saq_full'] += 1
                        backend.last_stall_reason = 'saq_full'
                    elif entry[4] and len(sdq_items) >= 8:
                        backend_stalls['sdq_full'] += 1
                        backend.last_stall_reason = 'sdq_full'
                    else:
                        outcome = entry[6](backend_state, backend_env)
                        if backend.issue_log is not None:
                            backend.issue_log.append(("i", pc, instruction, outcome))
                        clock.ticks += 1
                        pipe_iq.popleft()
                        frontend._iq_bytes -= size
                        fe_stats.instructions_supplied += 1
                        backend.instructions += 1
                        backend.last_pc = pc
                        if outcome.halted:
                            backend.halted = True
                        elif outcome.is_branch:
                            backend.branches += 1
                            if outcome.branch_taken:
                                backend.branches_taken += 1
                            backend._pending = _PendingBranch(target=outcome.branch_target, taken=outcome.branch_taken, resolve_at=now + 2, slots_remaining=outcome.branch_delay)
                            frontend_note_branch(pc, pc + size, outcome.branch_delay, outcome.branch_target)
                        elif pending is not None:
                            pending.slots_remaining -= 1
        if backend.halted:
            frontend_halt()
        # frontend.post_issue(now)
        if not pipe_iq and frontend._iqb_loaded and frontend._iqb_read_pc < frontend._iqb_base + 16:
            t_moved = 0
            t_line_end = frontend._iqb_base + 16
            t_span = frontend._span_pc
            t_ok = True
            if t_span is not None:
                if frontend._iqb_base != (t_span + 2) - ((t_span + 2) % 16):
                    t_ok = False
                else:
                    t_entry = pd_table.get(t_span, False)
                    if t_entry is False:
                        try:
                            t_entry = frontend_predecode_at(t_span)
                        except DecodeError:
                            t_entry = None
                    if t_entry is None or frontend._iqb_valid_end < t_span + t_entry[1]:
                        t_ok = False
                    else:
                        t_size = t_entry[1]
                        pipe_iq.append((t_span, t_entry[0], t_size))
                        pipe_clock.ticks += 1
                        t_moved = t_size
                        frontend._iq_next_pc = t_span + t_size
                        frontend._iqb_read_pc = t_span + t_size
                        frontend._span_pc = None
            elif frontend._iqb_read_pc != frontend._iq_next_pc:
                t_ok = False
            if t_ok:
                while True:
                    t_pc = frontend._iq_next_pc
                    if t_pc >= t_line_end or t_pc >= frontend._iqb_valid_end:
                        break
                    t_entry = pd_table.get(t_pc, False)
                    if t_entry is False:
                        try:
                            t_entry = frontend_predecode_at(t_pc)
                        except DecodeError:
                            t_entry = None
                    if t_entry is None:
                        break
                    t_size = t_entry[1]
                    if t_pc + t_size > t_line_end:
                        if t_moved == 0 and frontend._iqb_valid_end >= t_line_end:
                            frontend._span_pc = t_pc
                            frontend._iqb_read_pc = t_line_end
                            pipe_clock.ticks += 1
                        break
                    if t_pc + t_size > frontend._iqb_valid_end:
                        break
                    if t_moved + t_size > 16:
                        break
                    pipe_iq.append((t_pc, t_entry[0], t_size))
                    pipe_clock.ticks += 1
                    t_moved += t_size
                    frontend._iq_next_pc = t_pc + t_size
                    frontend._iqb_read_pc = t_pc + t_size
                frontend._iq_bytes = t_moved
        if not frontend._halted:
            if frontend._request is None or frontend._request_discarded:
                branch = frontend._branch
                if branch is not None and branch.resolved and branch.taken and frontend._iq_next_pc >= branch.delay_end_pc:
                    t_target = branch.target
                    if not (frontend._iqb_loaded and frontend._iqb_base == t_target - (t_target % 16) and frontend._iqb_read_pc <= t_target):
                        t_start = t_target
                        t_line = t_start - (t_start % 16)
                        if probe_memo.get(t_line) == icache_unit._epoch or cache_probe(t_line, 16):
                            probe_memo[t_line] = icache_unit._epoch
                            icache_stats.hits += 1
                            pipe_clock.ticks += 1
                            frontend._iqb_loaded = True
                            frontend._iqb_base = t_line
                            frontend._iqb_read_pc = t_start
                            frontend._iqb_valid_end = t_line + 16
                        else:
                            frontend_start_fill(t_start, now)
                elif not frontend._iqb_loaded or frontend._iqb_read_pc >= frontend._iqb_base + 16:
                    t_span = frontend._span_pc
                    if t_span is not None:
                        t_next = t_span - (t_span % 16) + 16
                        if frontend._iqb_base != t_next or not frontend._iqb_loaded:
                            t_start = t_next
                            t_line = t_start - (t_start % 16)
                            if probe_memo.get(t_line) == icache_unit._epoch or cache_probe(t_line, 16):
                                probe_memo[t_line] = icache_unit._epoch
                                icache_stats.hits += 1
                                pipe_clock.ticks += 1
                                frontend._iqb_loaded = True
                                frontend._iqb_base = t_line
                                frontend._iqb_read_pc = t_start
                                frontend._iqb_valid_end = t_line + 16
                            else:
                                frontend_start_fill(t_start, now)
                    else:
                        t_start = frontend._iq_next_pc
                        t_line = t_start - (t_start % 16)
                        if probe_memo.get(t_line) == icache_unit._epoch or cache_probe(t_line, 16):
                            probe_memo[t_line] = icache_unit._epoch
                            icache_stats.hits += 1
                            pipe_clock.ticks += 1
                            frontend._iqb_loaded = True
                            frontend._iqb_base = t_line
                            frontend._iqb_read_pc = t_start
                            frontend._iqb_valid_end = t_line + 16
                        else:
                            frontend_start_fill(t_start, now)
        if not pipe_iq and frontend._iqb_loaded and frontend._iqb_read_pc < frontend._iqb_base + 16:
            t_moved = 0
            t_line_end = frontend._iqb_base + 16
            t_span = frontend._span_pc
            t_ok = True
            if t_span is not None:
                if frontend._iqb_base != (t_span + 2) - ((t_span + 2) % 16):
                    t_ok = False
                else:
                    t_entry = pd_table.get(t_span, False)
                    if t_entry is False:
                        try:
                            t_entry = frontend_predecode_at(t_span)
                        except DecodeError:
                            t_entry = None
                    if t_entry is None or frontend._iqb_valid_end < t_span + t_entry[1]:
                        t_ok = False
                    else:
                        t_size = t_entry[1]
                        pipe_iq.append((t_span, t_entry[0], t_size))
                        pipe_clock.ticks += 1
                        t_moved = t_size
                        frontend._iq_next_pc = t_span + t_size
                        frontend._iqb_read_pc = t_span + t_size
                        frontend._span_pc = None
            elif frontend._iqb_read_pc != frontend._iq_next_pc:
                t_ok = False
            if t_ok:
                while True:
                    t_pc = frontend._iq_next_pc
                    if t_pc >= t_line_end or t_pc >= frontend._iqb_valid_end:
                        break
                    t_entry = pd_table.get(t_pc, False)
                    if t_entry is False:
                        try:
                            t_entry = frontend_predecode_at(t_pc)
                        except DecodeError:
                            t_entry = None
                    if t_entry is None:
                        break
                    t_size = t_entry[1]
                    if t_pc + t_size > t_line_end:
                        if t_moved == 0 and frontend._iqb_valid_end >= t_line_end:
                            frontend._span_pc = t_pc
                            frontend._iqb_read_pc = t_line_end
                            pipe_clock.ticks += 1
                        break
                    if t_pc + t_size > frontend._iqb_valid_end:
                        break
                    if t_moved + t_size > 16:
                        break
                    pipe_iq.append((t_pc, t_entry[0], t_size))
                    pipe_clock.ticks += 1
                    t_moved += t_size
                    frontend._iq_next_pc = t_pc + t_size
                    frontend._iqb_read_pc = t_pc + t_size
                frontend._iq_bytes = t_moved
        # memory.end_cycle(now)
        if frontend._request is not None and not frontend._request_accepted:
            if frontend._halted:
                frontend._request = None
                f_reqs = ()
            else:
                f_reqs = (frontend._request,)
        else:
            f_reqs = ()
        if laq_items or (saq_items and sdq_items):
            e_reqs = engine_poll(now)
        else:
            e_reqs = ()
        if f_reqs or e_reqs:
            n = len(f_reqs) + len(e_reqs)
            if n == 1:
                if f_reqs:
                    request = f_reqs[0]
                    notify = frontend_notify
                else:
                    request = e_reqs[0]
                    notify = engine_notify
                fpu_hit = _is_fpu(request.address)
                accepted = False
                if fpu_hit:
                    if fpu_can_accept(request, now):
                        fpu_accept(request, now)
                        accepted = True
                elif not (external._accepted_this_cycle or external.in_flight):
                    external_accept(request, now)
                    accepted = True
                if accepted:
                    notify(request, now)
                    mem_stats.output_bus_busy_cycles += 1
                    kind = request.kind
                    if fpu_hit:
                        if kind is K_STORE:
                            mem_stats.fpu_stores_accepted += 1
                        else:
                            mem_stats.fpu_loads_accepted += 1
                    else:
                        if kind is K_LOAD:
                            mem_stats.loads_accepted += 1
                        elif kind is K_STORE:
                            mem_stats.stores_accepted += 1
                        elif request.demand:
                            mem_stats.ifetch_demand_accepted += 1
                        else:
                            mem_stats.ifetch_prefetch_accepted += 1
            else:
                mem_stats.acceptance_conflicts += 1
                memory.last_conflict_candidates = n
                cands = [(request, frontend_notify) for request in f_reqs]
                for request in e_reqs:
                    cands.append((request, engine_notify))
                cands.sort(key=lambda item: _acc_order(item[0], _PRIORITY))
                for request, notify in cands:
                    fpu_hit = _is_fpu(request.address)
                    if fpu_hit:
                        if not fpu_can_accept(request, now):
                            continue
                        fpu_accept(request, now)
                    elif external._accepted_this_cycle or external.in_flight:
                        continue
                    else:
                        external_accept(request, now)
                    notify(request, now)
                    mem_stats.output_bus_busy_cycles += 1
                    kind = request.kind
                    if fpu_hit:
                        if kind is K_STORE:
                            mem_stats.fpu_stores_accepted += 1
                        else:
                            mem_stats.fpu_loads_accepted += 1
                    else:
                        if kind is K_LOAD:
                            mem_stats.loads_accepted += 1
                        elif kind is K_STORE:
                            mem_stats.stores_accepted += 1
                        elif request.demand:
                            mem_stats.ifetch_demand_accepted += 1
                        else:
                            mem_stats.ifetch_prefetch_accepted += 1
                    break
        now += 1
        if backend.halted and not laq_items and not saq_items and not sdq_items and not engine._in_flight_loads and not external.in_flight and not fpu._ops_pending and not fpu._results_ready and not fpu._result_loads:
            break
        if backend.replay_backedge is not None:
            target = backend.replay_backedge
            backend.replay_backedge = None
            jumped = replay_on_backedge(target, now)
            if jumped != now:
                now = jumped
                last_ticks = clock.ticks
                last_progress_at = now & -256
        if not now & 255:
            ticks = clock.ticks
            if ticks != last_ticks:
                last_ticks = ticks
                last_progress_at = now
            elif now - last_progress_at > 20000:
                raise sim._deadlock(now, last_progress_at, False)
            replay_check_runaway()
        if now >= 500000000:
            raise sim._timeout(now, False)
        if clock.ticks == ticks_before:
            wake = IDLE
            for request in external.in_flight:
                ready = request.ready_at
                if ready is not None and ready < wake:
                    wake = ready
            _ops = fpu._ops_pending
            if _ops and _ops[0] < wake:
                wake = _ops[0]
            bpending = backend._pending
            if bpending is not None and not bpending.notified and bpending.resolve_at < wake:
                wake = bpending.resolve_at
            ticks = clock.ticks
            if ticks != last_ticks:
                first_snapshot = (now | 255) + 1
                fire_base = first_snapshot
            else:
                first_snapshot = None
                fire_base = last_progress_at
            fire = -(-(fire_base + 20001) // 256) * 256
            if fire <= wake and fire <= 500000000:
                target = fire
                fate = 1
            elif 500000000 <= wake:
                target = 500000000
                fate = 2
            else:
                target = wake
                fate = 0
            if target > now:
                span = target - now
                stall_reason = backend.last_stall_reason if not backend.halted else None
                if stall_reason is not None:
                    backend_stalls[stall_reason] += span
                conflict = mem_stats.acceptance_conflicts > conflicts_before
                if conflict:
                    mem_stats.acceptance_conflicts += span
                if external.in_flight:
                    external.busy_cycles += span
                if first_snapshot is not None and first_snapshot <= target:
                    last_ticks = ticks
                    last_progress_at = first_snapshot
                now = target
                if fate == 1:
                    raise sim._deadlock(now, last_progress_at, True)
                if fate == 2:
                    raise sim._timeout(now, True)
    return now
