"""Structural invariants of the event stream.

These tests replay real workloads through every fetch strategy with an
unbounded in-memory sink and check properties that must hold for *any*
trace, independent of the workload:

* cycle stamps never decrease, the stream opens with ``sim begin`` at
  cycle 0 and (for a halting run) closes with ``sim end``;
* every fetch request sequence number is issued exactly once, is closed
  by exactly one ``complete`` or ``cancel``, and is never promoted or
  closed before it is issued;
* architectural-queue pops never precede pushes: the running depth
  implied by push/pop events never goes negative and always equals the
  ``depth`` field the event reports;
* IQ occupancy obeys the same push/pop discipline (with redirects
  squashing the whole queue) and its byte occupancy never exceeds the
  configured ``iq_size``;
* every cache miss that names a request sequence is paired with a
  request issued in the same cycle, and — when that request completes —
  with a cache fill of the missed line.
"""

import pytest

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.simulator import Simulator
from repro.core.trace import RingBufferSink, Tracer
from tests.test_trace_golden import KERNEL

CONFIGS = {
    "pipe-16-16": lambda: MachineConfig.pipe("16-16", 128, memory_access_time=6),
    "pipe-8-8": lambda: MachineConfig.pipe("8-8", 64, memory_access_time=6),
    "conventional": lambda: MachineConfig.conventional(128, memory_access_time=6),
    "tib": lambda: MachineConfig.tib(memory_access_time=6),
}


@pytest.fixture(scope="module", params=sorted(CONFIGS))
def traced_run(request):
    """(config, events, result) for one strategy over the tiny kernel."""
    config = CONFIGS[request.param]()
    tracer = Tracer()
    ring = tracer.attach(RingBufferSink(capacity=None))
    result = Simulator(config, assemble(KERNEL), tracer=tracer).run()
    tracer.close()
    return config, list(ring.events), result


def test_cycles_monotonic_and_bracketed(traced_run):
    _, events, result = traced_run
    assert events[0]["o"] == "sim" and events[0]["k"] == "begin"
    assert events[0]["c"] == 0
    assert events[-1]["o"] == "sim" and events[-1]["k"] == "end"
    assert events[-1]["halted"] is True
    assert events[-1]["cycles"] == result.cycles
    previous = -1
    for event in events:
        assert event["c"] >= previous, f"cycle regressed at {event}"
        previous = event["c"]
    assert previous <= result.cycles


def test_fetch_request_lifecycle(traced_run):
    _, events, _ = traced_run
    state: dict[int, str] = {}
    for event in events:
        if event["o"] != "fetch":
            continue
        kind = event["k"]
        if kind == "redirect":
            continue
        seq = event["seq"]
        if kind == "request":
            assert seq not in state, f"seq {seq} issued twice"
            state[seq] = "open"
        elif kind == "promote":
            assert state.get(seq) == "open", f"promote of non-open seq {seq}"
        else:  # complete / cancel
            assert state.get(seq) == "open", f"{kind} of non-open seq {seq}"
            state[seq] = kind
    still_open = [seq for seq, status in state.items() if status == "open"]
    assert not still_open, f"requests never closed: {still_open}"


def test_queue_pops_never_precede_pushes(traced_run):
    _, events, _ = traced_run
    depths: dict[str, int] = {}
    for event in events:
        if event["o"] != "queue":
            continue
        name = event["queue"]
        depth = depths.get(name, 0) + (1 if event["k"] == "push" else -1)
        assert depth >= 0, f"{name} popped while empty at {event}"
        assert event["depth"] == depth, (
            f"{name} reported depth {event['depth']}, running count {depth}"
        )
        depths[name] = depth
    assert all(depth == 0 for depth in depths.values()), (
        f"queues not drained at halt: {depths}"
    )


def test_iq_occupancy_within_configured_size(traced_run):
    config, events, _ = traced_run
    depth = 0
    for event in events:
        if event["o"] == "iq":
            depth += 1 if event["k"] == "push" else -1
            assert depth >= 0, f"IQ popped while empty at {event}"
            assert event["depth"] == depth
            if event["k"] == "push":
                assert event["bytes"] <= config.iq_size, (
                    f"IQ holds {event['bytes']}B, configured {config.iq_size}B"
                )
        elif event["o"] == "fetch" and event["k"] == "redirect":
            # A PIPE redirect squashes the whole IQ in one step; the
            # event must account for exactly the entries present.
            assert event["squashed"] == depth
            depth = 0


def test_every_miss_names_a_request_issued_that_cycle(traced_run):
    _, events, _ = traced_run
    requests = {
        event["seq"]: event
        for event in events
        if event["o"] == "fetch" and event["k"] == "request"
    }
    for event in events:
        if event["o"] == "icache" and event["k"] == "miss" and event["seq"] >= 0:
            request = requests.get(event["seq"])
            assert request is not None, f"miss names unknown seq: {event}"
            assert request["c"] == event["c"], (
                f"miss and its request disagree on cycle: {event} vs {request}"
            )


def test_completed_misses_are_filled(traced_run):
    _, events, _ = traced_run
    completed = {
        event["seq"]
        for event in events
        if event["o"] == "fetch" and event["k"] == "complete"
    }
    fills_by_addr: dict[int, list[int]] = {}
    for event in events:
        if event["o"] == "icache" and event["k"] == "fill":
            fills_by_addr.setdefault(event["addr"], []).append(event["c"])
    for event in events:
        if event["o"] != "icache" or event["k"] != "miss":
            continue
        if event["seq"] not in completed:
            continue  # cancelled or withdrawn before delivery
        fills = fills_by_addr.get(event["addr"], [])
        assert any(cycle >= event["c"] for cycle in fills), (
            f"completed miss never filled line {event['addr']:#x}: {event}"
        )


def test_backend_issue_count_matches_sim_end(traced_run):
    _, events, result = traced_run
    issues = sum(
        1 for event in events if event["o"] == "backend" and event["k"] == "issue"
    )
    assert issues == events[-1]["instructions"] == result.instructions
