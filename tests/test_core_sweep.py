"""Tests of the cache-size sweep driver."""

from repro.core.config import FetchStrategy
from repro.core.sweep import SweepSeries, run_cache_sweep, standard_strategies


class TestStrategies:
    def test_five_curves(self):
        strategies = standard_strategies()
        assert list(strategies) == [
            "PIPE 8-8",
            "PIPE 16-16",
            "PIPE 16-32",
            "PIPE 32-32",
            "conventional",
        ]

    def test_factories_bind_their_configuration(self):
        strategies = standard_strategies()
        config = strategies["PIPE 16-32"](128)
        assert config.line_size == 32 and config.iq_size == 16
        conv = strategies["conventional"](64)
        assert conv.fetch_strategy is FetchStrategy.CONVENTIONAL


class TestSweep:
    def test_sweep_shape(self, tiny_program):
        series = run_cache_sweep(
            tiny_program,
            cache_sizes=(32, 128),
            memory_access_time=1,
            input_bus_width=8,
        )
        assert len(series) == 5
        for curve in series:
            assert len(curve.cache_sizes) == len(curve.cycles)
            assert all(cycles > 0 for cycles in curve.cycles)

    def test_undersized_caches_skipped(self, tiny_program):
        """A 32-byte-line configuration cannot have a 16-byte cache."""
        series = run_cache_sweep(
            tiny_program,
            cache_sizes=(16, 32, 64),
            memory_access_time=1,
            input_bus_width=8,
        )
        by_label = {curve.label: curve for curve in series}
        assert 16 not in by_label["PIPE 32-32"].cache_sizes
        assert 16 in by_label["PIPE 8-8"].cache_sizes

    def test_overrides_forwarded(self, tiny_program):
        series = run_cache_sweep(
            tiny_program,
            cache_sizes=(64,),
            memory_access_time=6,
            input_bus_width=4,
            memory_pipelined=True,
        )
        result = series[0].results[0]
        assert result.config.memory_access_time == 6
        assert result.config.memory_pipelined

    def test_series_helpers(self):
        series = SweepSeries("x", [32, 64, 128], [300, 200, 100])
        assert series.as_dict() == {32: 300, 64: 200, 128: 100}
        assert series.flatness == 3.0

    def test_flatness_of_empty_series(self):
        """A curve with no surviving points must not crash flatness."""
        assert SweepSeries("empty", [], []).flatness == 1.0

    def test_flatness_of_singleton_series(self):
        assert SweepSeries("one", [64], [1234]).flatness == 1.0

    def test_parallel_sweep_matches_serial(self, tiny_program):
        serial = run_cache_sweep(
            tiny_program,
            cache_sizes=(32, 128),
            memory_access_time=1,
            input_bus_width=8,
            jobs=1,
        )
        parallel = run_cache_sweep(
            tiny_program,
            cache_sizes=(32, 128),
            memory_access_time=1,
            input_bus_width=8,
            jobs=2,
        )
        assert [s.label for s in serial] == [s.label for s in parallel]
        for a, b in zip(serial, parallel):
            assert a.cache_sizes == b.cache_sizes
            assert a.cycles == b.cycles
