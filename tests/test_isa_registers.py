"""Unit tests for the register model."""

import pytest

from repro.isa.registers import (
    NUM_BRANCH_REGISTERS,
    NUM_VISIBLE_REGISTERS,
    QUEUE_REGISTER,
    branch_register_name,
    check_branch_register,
    check_data_register,
    data_register_name,
    parse_register_name,
)


class TestConstants:
    def test_visible_registers(self):
        assert NUM_VISIBLE_REGISTERS == 8

    def test_branch_registers(self):
        assert NUM_BRANCH_REGISTERS == 8

    def test_queue_register_is_r7(self):
        assert QUEUE_REGISTER == 7


class TestNames:
    def test_data_register_names(self):
        assert [data_register_name(i) for i in range(8)] == [
            f"r{i}" for i in range(8)
        ]

    def test_branch_register_names(self):
        assert branch_register_name(0) == "b0"
        assert branch_register_name(7) == "b7"

    def test_data_name_out_of_range(self):
        with pytest.raises(ValueError):
            data_register_name(8)

    def test_branch_name_out_of_range(self):
        with pytest.raises(ValueError):
            branch_register_name(-1)


class TestChecks:
    @pytest.mark.parametrize("index", range(8))
    def test_valid_data_registers(self, index):
        check_data_register(index)  # must not raise

    @pytest.mark.parametrize("index", [-1, 8, 100])
    def test_invalid_data_registers(self, index):
        with pytest.raises(ValueError):
            check_data_register(index)

    @pytest.mark.parametrize("index", [-1, 8])
    def test_invalid_branch_registers(self, index):
        with pytest.raises(ValueError):
            check_branch_register(index)


class TestParsing:
    def test_parse_data(self):
        assert parse_register_name("r3") == ("data", 3)

    def test_parse_branch(self):
        assert parse_register_name("b5") == ("branch", 5)

    def test_parse_queue_alias(self):
        assert parse_register_name("q") == ("data", QUEUE_REGISTER)

    def test_parse_case_insensitive(self):
        assert parse_register_name("R2") == ("data", 2)
        assert parse_register_name(" B1 ") == ("branch", 1)

    @pytest.mark.parametrize("name", ["r8", "b9", "x1", "r", "", "r-1", "rr2"])
    def test_parse_rejects(self, name):
        with pytest.raises(ValueError):
            parse_register_name(name)
