"""Unit tests for instruction execution semantics."""

import pytest

from repro.cpu.executor import execute, queue_effects
from repro.cpu.state import ArchState
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import QUEUE_REGISTER


class RecordingEnv:
    """Execution environment that records queue traffic."""

    def __init__(self, ldq_values=()):
        self.ldq = list(ldq_values)
        self.sdq: list[int] = []
        self.laq: list[int] = []
        self.saq: list[int] = []

    def pop_ldq(self):
        return self.ldq.pop(0)

    def push_sdq(self, value):
        self.sdq.append(value)

    def push_laq(self, address):
        self.laq.append(address)

    def push_saq(self, address):
        self.saq.append(address)


class TestQueueEffects:
    def test_plain_alu(self):
        effects = queue_effects(Instruction.alu_rr(Opcode.ADD, 1, 2, 3))
        assert not any(
            (effects.pops_ldq, effects.pushes_sdq, effects.pushes_laq,
             effects.pushes_saq)
        )

    def test_r7_source_pops(self):
        effects = queue_effects(Instruction.alu_rr(Opcode.ADD, 1, QUEUE_REGISTER, 3))
        assert effects.pops_ldq

    def test_r7_destination_pushes(self):
        effects = queue_effects(Instruction.alu_rr(Opcode.OR, QUEUE_REGISTER, 1, 1))
        assert effects.pushes_sdq

    def test_load_pushes_laq(self):
        assert queue_effects(Instruction.load(1, 0)).pushes_laq
        assert queue_effects(Instruction.load_indexed(1, 2)).pushes_laq

    def test_store_pushes_saq(self):
        assert queue_effects(Instruction.store(1, 0)).pushes_saq

    def test_pbra_never_pops(self):
        instr = Instruction.branch(Opcode.PBRA, 0, QUEUE_REGISTER, 0)
        assert not queue_effects(instr).pops_ldq

    def test_conditional_branch_on_r7_pops(self):
        instr = Instruction.branch(Opcode.PBRNE, 0, QUEUE_REGISTER, 0)
        assert queue_effects(instr).pops_ldq


class TestAluExecution:
    def test_add(self):
        state, env = ArchState(), RecordingEnv()
        state.write(2, 10)
        state.write(3, 32)
        execute(Instruction.alu_rr(Opcode.ADD, 1, 2, 3), state, env)
        assert state.read(1) == 42

    def test_li_sign_extends(self):
        state, env = ArchState(), RecordingEnv()
        execute(Instruction.alu_ri(Opcode.LI, 1, 0, -2), state, env)
        assert state.read(1) == 0xFFFFFFFE

    def test_lih_merges_high_half(self):
        state, env = ArchState(), RecordingEnv()
        execute(Instruction.alu_ri(Opcode.LI, 1, 0, 0x1234), state, env)
        execute(Instruction.alu_ri(Opcode.LIH, 1, 0, 0xABCD), state, env)
        assert state.read(1) == 0xABCD1234

    def test_li_lih_builds_fpu_base(self):
        """The idiom the suite preamble uses for addresses above 0x7FFF."""
        state, env = ArchState(), RecordingEnv()
        execute(Instruction.alu_ri(Opcode.LI, 6, 0, 0xF000), state, env)
        execute(Instruction.alu_ri(Opcode.LIH, 6, 0, 0), state, env)
        assert state.read(6) == 0x0000F000

    def test_logical_immediates_zero_extend(self):
        state, env = ArchState(), RecordingEnv()
        state.write(2, 0xFFFFFFFF)
        execute(Instruction.alu_ri(Opcode.ANDI, 1, 2, 0xFFFF), state, env)
        assert state.read(1) == 0x0000FFFF

    def test_arithmetic_immediates_sign_extend(self):
        state, env = ArchState(), RecordingEnv()
        state.write(2, 10)
        execute(Instruction.alu_ri(Opcode.ADDI, 1, 2, -3), state, env)
        assert state.read(1) == 7


class TestQueueRegisterSemantics:
    def test_single_pop_feeds_both_sources(self):
        """r7 twice in one instruction pops exactly one LDQ entry."""
        state = ArchState()
        env = RecordingEnv(ldq_values=[21, 99])
        execute(
            Instruction.alu_rr(Opcode.ADD, 1, QUEUE_REGISTER, QUEUE_REGISTER),
            state,
            env,
        )
        assert state.read(1) == 42
        assert env.ldq == [99]  # only one value consumed

    def test_qtoq_moves_one_value(self):
        state = ArchState()
        env = RecordingEnv(ldq_values=[7])
        execute(
            Instruction.alu_rr(
                Opcode.OR, QUEUE_REGISTER, QUEUE_REGISTER, QUEUE_REGISTER
            ),
            state,
            env,
        )
        assert env.sdq == [7]
        assert env.ldq == []

    def test_destination_push(self):
        state = ArchState()
        state.write(1, 5)
        env = RecordingEnv()
        execute(Instruction.alu_rr(Opcode.OR, QUEUE_REGISTER, 1, 1), state, env)
        assert env.sdq == [5]


class TestMemoryExecution:
    def test_ld_address(self):
        state, env = ArchState(), RecordingEnv()
        state.write(1, 100)
        execute(Instruction.load(1, 24), state, env)
        assert env.laq == [124]

    def test_ldx_address(self):
        state, env = ArchState(), RecordingEnv()
        state.write(1, 100)
        state.write(2, 8)
        execute(Instruction.load_indexed(1, 2), state, env)
        assert env.laq == [108]

    def test_st_address(self):
        state, env = ArchState(), RecordingEnv()
        state.write(3, 0x40)
        execute(Instruction.store(3, -16), state, env)
        assert env.saq == [0x30]

    def test_negative_displacement_wraps(self):
        state, env = ArchState(), RecordingEnv()
        state.write(1, 0)
        execute(Instruction.load(1, -4), state, env)
        assert env.laq == [0xFFFFFFFC]


class TestBranchExecution:
    def _branch(self, op, cond_value, delay=3):
        state, env = ArchState(), RecordingEnv()
        state.write_branch(2, 0x200)
        state.write(1, cond_value & 0xFFFFFFFF)
        outcome = execute(Instruction.branch(op, 2, 1, delay), state, env)
        return outcome

    def test_pbra_always_taken(self):
        outcome = self._branch(Opcode.PBRA, 0)
        assert outcome.is_branch and outcome.branch_taken
        assert outcome.branch_target == 0x200
        assert outcome.branch_delay == 3

    @pytest.mark.parametrize(
        "op,value,taken",
        [
            (Opcode.PBREQ, 0, True),
            (Opcode.PBREQ, 1, False),
            (Opcode.PBRNE, 0, False),
            (Opcode.PBRNE, 5, True),
            (Opcode.PBRLT, -1, True),
            (Opcode.PBRLT, 0, False),
            (Opcode.PBRGE, 0, True),
            (Opcode.PBRGE, -3, False),
        ],
    )
    def test_conditions(self, op, value, taken):
        assert self._branch(op, value).branch_taken == taken


class TestSystemExecution:
    def test_halt(self):
        outcome = execute(Instruction.halt(), ArchState(), RecordingEnv())
        assert outcome.halted

    def test_nop(self):
        outcome = execute(Instruction.nop(), ArchState(), RecordingEnv())
        assert not outcome.halted and not outcome.is_branch

    def test_exch(self):
        state, env = ArchState(), RecordingEnv()
        state.write(0, 1)
        execute(Instruction(Opcode.EXCH), state, env)
        assert state.read(0) == 0

    def test_lbr(self):
        state, env = ArchState(), RecordingEnv()
        execute(Instruction.load_branch_register(1, 0x80), state, env)
        assert state.read_branch(1) == 0x80

    def test_lbrr(self):
        state, env = ArchState(), RecordingEnv()
        state.write(4, 0x1000)
        execute(Instruction(Opcode.LBRR, a=2, b=4), state, env)
        assert state.read_branch(2) == 0x1000
