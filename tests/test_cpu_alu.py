"""Unit + property tests for the 32-bit ALU semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.alu import MASK32, alu_operate, to_signed, to_unsigned
from repro.isa.opcodes import Opcode

U32 = st.integers(min_value=0, max_value=MASK32)


class TestConversions:
    @given(U32)
    def test_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    def test_signed_boundaries(self):
        assert to_signed(0x7FFFFFFF) == 2**31 - 1
        assert to_signed(0x80000000) == -(2**31)
        assert to_signed(0xFFFFFFFF) == -1

    @given(st.integers())
    def test_to_unsigned_wraps(self, value):
        assert 0 <= to_unsigned(value) <= MASK32
        assert to_unsigned(value) == value % 2**32


class TestArithmetic:
    @given(U32, U32)
    def test_add_wraps(self, a, b):
        assert alu_operate(Opcode.ADD, a, b) == (a + b) % 2**32

    @given(U32, U32)
    def test_sub_wraps(self, a, b):
        assert alu_operate(Opcode.SUB, a, b) == (a - b) % 2**32

    @given(U32, U32)
    def test_logic(self, a, b):
        assert alu_operate(Opcode.AND, a, b) == a & b
        assert alu_operate(Opcode.OR, a, b) == a | b
        assert alu_operate(Opcode.XOR, a, b) == a ^ b

    @given(U32, st.integers(min_value=0, max_value=31))
    def test_shifts(self, a, sh):
        assert alu_operate(Opcode.SLL, a, sh) == (a << sh) % 2**32
        assert alu_operate(Opcode.SRL, a, sh) == a >> sh
        assert alu_operate(Opcode.SRA, a, sh) == to_unsigned(to_signed(a) >> sh)

    def test_shift_amount_masked(self):
        assert alu_operate(Opcode.SLL, 1, 33) == alu_operate(Opcode.SLL, 1, 1)

    @given(U32, U32)
    def test_comparisons_signed(self, a, b):
        sa, sb = to_signed(a), to_signed(b)
        assert alu_operate(Opcode.SLT, a, b) == int(sa < sb)
        assert alu_operate(Opcode.SLE, a, b) == int(sa <= sb)
        assert alu_operate(Opcode.SEQ, a, b) == int(a == b)
        assert alu_operate(Opcode.SNE, a, b) == int(a != b)

    def test_immediate_twins_agree(self):
        for rr, ri in [
            (Opcode.ADD, Opcode.ADDI),
            (Opcode.SUB, Opcode.SUBI),
            (Opcode.AND, Opcode.ANDI),
            (Opcode.SLT, Opcode.SLTI),
        ]:
            assert alu_operate(rr, 100, 7) == alu_operate(ri, 100, 7)

    def test_non_alu_rejected(self):
        with pytest.raises(ValueError):
            alu_operate(Opcode.LD, 1, 2)
