"""Unit tests for the timed FPU wrapper."""

from repro.memory.fpu import (
    FPU_OPERAND_A,
    FPU_RESULT,
    FPU_TRIGGER_ADD,
    FPU_TRIGGER_MUL,
    TRIGGER_OPERATIONS,
    FpuLatencies,
)
from repro.memory.fpu_timing import TimedFpu
from repro.memory.requests import MemoryRequest, RequestKind


def store(address, seq=0):
    return MemoryRequest(
        kind=RequestKind.STORE, address=address, size=4, seq=seq, store_value=0
    )


def result_load(seq=0):
    return MemoryRequest(kind=RequestKind.LOAD, address=FPU_RESULT, size=4, seq=seq)


def make_fpu(**kwargs):
    return TimedFpu(FpuLatencies(**kwargs), TRIGGER_OPERATIONS)


class TestOperationTiming:
    def test_multiply_takes_four_cycles(self):
        fpu = make_fpu()
        fpu.accept(store(FPU_OPERAND_A), 0)
        fpu.accept(store(FPU_TRIGGER_MUL), 1)  # op starts at 1, done at 5
        load = result_load()
        fpu.accept(load, 2)
        for now in range(2, 5):
            fpu.begin_cycle(now)
            assert fpu.deliverable_load(now) is None
        fpu.begin_cycle(5)
        assert fpu.deliverable_load(5) is load

    def test_unpipelined_back_to_back(self):
        fpu = make_fpu()
        fpu.accept(store(FPU_TRIGGER_MUL), 0)  # done at 4
        fpu.accept(store(FPU_TRIGGER_MUL), 1)  # starts at 4, done at 8
        fpu.begin_cycle(4)
        fpu.accept(result_load(seq=2), 4)
        fpu.accept(result_load(seq=3), 4)
        assert fpu.deliverable_load(4) is not None
        fpu.deliver(4)
        fpu.begin_cycle(5)
        assert fpu.deliverable_load(5) is None  # second op not done until 8
        fpu.begin_cycle(8)
        assert fpu.deliverable_load(8) is not None

    def test_operand_store_accepts_anytime(self):
        fpu = make_fpu()
        assert fpu.can_accept(store(FPU_OPERAND_A), 0)

    def test_op_queue_backpressure(self):
        fpu = TimedFpu(FpuLatencies(), TRIGGER_OPERATIONS, op_queue_capacity=2)
        fpu.accept(store(FPU_TRIGGER_ADD), 0)
        fpu.accept(store(FPU_TRIGGER_ADD), 0)
        assert not fpu.can_accept(store(FPU_TRIGGER_ADD), 0)
        # Queue drains by time, not by result pickup.
        fpu.begin_cycle(20)
        assert fpu.can_accept(store(FPU_TRIGGER_ADD), 20)


class TestDelivery:
    def test_delivery_completes_request(self):
        fpu = make_fpu()
        fpu.accept(store(FPU_TRIGGER_ADD), 0)
        load = result_load()
        chunks = []
        load.on_chunk = lambda off, n, now: chunks.append((off, n, now))
        fpu.accept(load, 1)
        fpu.begin_cycle(4)
        delivered = fpu.deliver(4)
        assert delivered is load
        assert load.completed
        assert chunks == [(0, 4, 4)]
        assert fpu.results_delivered == 1

    def test_idle_property(self):
        fpu = make_fpu()
        assert fpu.idle
        fpu.accept(store(FPU_TRIGGER_ADD), 0)
        assert not fpu.idle
        fpu.accept(result_load(), 1)
        fpu.begin_cycle(4)
        fpu.deliver(4)
        assert fpu.idle

    def test_loads_served_in_order(self):
        fpu = make_fpu()
        fpu.accept(store(FPU_TRIGGER_ADD), 0)
        fpu.accept(store(FPU_TRIGGER_MUL), 1)
        first = result_load(seq=10)
        second = result_load(seq=11)
        fpu.accept(first, 2)
        fpu.accept(second, 2)
        fpu.begin_cycle(10)
        assert fpu.deliver(10) is first
        assert fpu.deliver(10) is second
