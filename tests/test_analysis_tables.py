"""Tests for table/CSV rendering."""

from repro.analysis.tables import (
    render_series_csv,
    render_series_table,
    render_table1,
    render_table2,
    table1_rows,
)
from repro.core.sweep import SweepSeries


class TestTable1:
    def test_rows(self, tiny_suite):
        rows = table1_rows(tiny_suite)
        assert len(rows) == 14
        assert rows[2] == (3, tiny_suite.inner_loop_bytes(3), 64)

    def test_render(self, tiny_suite):
        text = render_table1(tiny_suite)
        assert "Table I" in text
        assert "ours" in text and "paper" in text
        assert text.count("\n") >= 16  # header + 14 rows + sum


class TestTable2:
    def test_render(self):
        text = render_table2()
        for name in ("8-8", "16-16", "16-32", "32-32"):
            assert name in text
        assert "IQB" in text


def sample_series():
    return [
        SweepSeries("PIPE 8-8", [32, 64], [500, 400]),
        SweepSeries("conventional", [32, 64], [900, 600]),
    ]


class TestSeriesRendering:
    def test_table(self):
        text = render_series_table("A figure", sample_series(), [32, 64])
        assert "A figure" in text
        assert "PIPE 8-8" in text
        assert "900" in text

    def test_missing_points_dashed(self):
        series = [SweepSeries("PIPE 32-32", [64], [123])]
        text = render_series_table("t", series, [32, 64])
        assert "—" in text

    def test_csv(self):
        csv = render_series_csv(sample_series(), [32, 64])
        lines = csv.splitlines()
        assert lines[0] == "strategy,32,64"
        assert "PIPE 8-8,500,400" in lines
        assert "conventional,900,600" in lines
