"""Unit tests for the trace layer primitives (repro.core.trace)."""

import io
import json

import pytest
from hypothesis import given, strategies as st

from repro.core.trace import (
    NULL_TRACER,
    JsonLinesSink,
    MetricsSink,
    RingBufferSink,
    TraceMetrics,
    Tracer,
    merge_trace_files,
    read_trace,
)


class TestTracer:
    def test_no_sinks_means_disabled(self):
        assert not Tracer().enabled
        assert not NULL_TRACER.enabled

    def test_attach_enables(self):
        tracer = Tracer()
        sink = tracer.attach(RingBufferSink())
        assert tracer.enabled
        assert isinstance(sink, RingBufferSink)

    def test_emit_stamps_current_cycle(self):
        tracer = Tracer()
        ring = tracer.attach(RingBufferSink())
        tracer.cycle = 7
        tracer.emit("icache", "hit", addr=32)
        tracer.cycle = 9
        tracer.emit("icache", "miss", addr=48, seq=3)
        assert [e["c"] for e in ring.events] == [7, 9]
        assert ring.events[0] == {"c": 7, "o": "icache", "k": "hit", "addr": 32}

    def test_fan_out_to_multiple_sinks(self):
        tracer = Tracer()
        a = tracer.attach(RingBufferSink())
        b = tracer.attach(RingBufferSink())
        tracer.emit("sim", "end", cycles=1, instructions=0, halted=True)
        assert a.total_events == b.total_events == 1

    def test_metrics_finds_first_metrics_sink(self):
        tracer = Tracer()
        assert tracer.metrics() is None
        tracer.attach(RingBufferSink())
        sink = tracer.attach(MetricsSink())
        assert tracer.metrics() is sink.metrics

    def test_null_tracer_emit_is_harmless(self):
        # Emit sites guard with ``if tracer.enabled``, but a stray call
        # on the shared disabled tracer must still be a no-op.
        NULL_TRACER.emit("icache", "hit", addr=0)


class TestJsonLinesSink:
    def test_writes_canonical_lines_to_stream(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.emit(3, "iq", "push", {"pc": 16, "depth": 1, "bytes": 4})
        sink.close()  # caller-owned stream: flushed, not closed
        assert not stream.closed
        assert stream.getvalue() == (
            '{"c":3,"o":"iq","k":"push","pc":16,"depth":1,"bytes":4}\n'
        )
        assert sink.events_written == 1

    def test_owns_and_closes_path_target(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(path)
        sink.emit(0, "sim", "begin", {"strategy": "pipe", "config": "x"})
        sink.close()
        sink.close()  # idempotent
        [record] = list(read_trace(path))
        assert record == {"c": 0, "o": "sim", "k": "begin",
                          "strategy": "pipe", "config": "x"}

    def test_read_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"c":0,"o":"a","k":"b"}\n\n{"c":1,"o":"a","k":"b"}\n')
        assert len(list(read_trace(path))) == 2


class TestRingBufferSink:
    def test_keeps_only_last_capacity_events(self):
        sink = RingBufferSink(capacity=3)
        for cycle in range(10):
            sink.emit(cycle, "iq", "push", {})
        assert sink.total_events == 10
        assert [e["c"] for e in sink.events] == [7, 8, 9]

    def test_unbounded_capacity(self):
        sink = RingBufferSink(capacity=None)
        for cycle in range(100):
            sink.emit(cycle, "iq", "push", {})
        assert len(sink.events) == sink.total_events == 100

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_rejects_nonpositive_capacity(self, capacity):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=capacity)


class TestTraceMetrics:
    def test_from_events_counts_components(self):
        events = [
            {"c": 0, "o": "sim", "k": "begin", "strategy": "pipe", "config": "x"},
            {"c": 0, "o": "icache", "k": "miss", "addr": 0, "seq": 0},
            {"c": 1, "o": "icache", "k": "hit", "addr": 0},
            {"c": 1, "o": "icache", "k": "fill", "addr": 0, "bytes": 16,
             "replaced": 1},
            {"c": 2, "o": "backend", "k": "issue", "pc": 0},
            {"c": 2, "o": "backend", "k": "stall", "reason": "ldq_empty"},
            {"c": 2, "o": "backend", "k": "stall", "reason": "ldq_empty"},
            {"c": 3, "o": "queue", "k": "push", "queue": "LAQ", "depth": 1},
            {"c": 3, "o": "queue", "k": "push", "queue": "SAQ", "depth": 1},
            {"c": 4, "o": "queue", "k": "pop", "queue": "LAQ", "depth": 0},
            {"c": 5, "o": "sim", "k": "end", "cycles": 5, "instructions": 1,
             "halted": True},
        ]
        metrics = TraceMetrics.from_events(events)
        assert metrics.events == len(events)
        assert metrics.cycles == 5 and metrics.halted
        assert metrics.instructions == 1
        assert metrics.cache_hits == 1 and metrics.cache_misses == 1
        assert metrics.cache_fills == 1 and metrics.cache_line_replacements == 1
        assert metrics.cache_miss_rate == 0.5
        assert metrics.stalls == {"ldq_empty": 2}
        assert metrics.loads_issued == 1 and metrics.stores_issued == 1
        assert metrics.queues["LAQ"].pushes == 1
        assert metrics.queues["LAQ"].pops == 1
        assert metrics.queues["LAQ"].max_occupancy == 1

    def test_iq_depth_statistics(self):
        events = [
            {"c": 0, "o": "iq", "k": "push", "pc": 0, "depth": 1, "bytes": 4},
            {"c": 1, "o": "iq", "k": "push", "pc": 4, "depth": 2, "bytes": 8},
            {"c": 2, "o": "iq", "k": "pop", "pc": 0, "depth": 1, "bytes": 4},
        ]
        metrics = TraceMetrics.from_events(events)
        assert metrics.iq_pushes == 2 and metrics.iq_pops == 1
        assert metrics.iq_max_depth == 2 and metrics.iq_max_bytes == 8
        assert metrics.mean_iq_depth == pytest.approx(4 / 3)

    def test_derived_rates_are_zero_on_empty(self):
        metrics = TraceMetrics()
        assert metrics.cache_miss_rate == 0.0
        assert metrics.output_port_utilization == 0.0
        assert metrics.input_port_utilization == 0.0
        assert metrics.mean_iq_depth == 0.0
        assert metrics.ipc == 0.0

    def test_to_dict_round_trip(self):
        events = [
            {"c": 0, "o": "backend", "k": "stall", "reason": "frontend_empty"},
            {"c": 1, "o": "queue", "k": "push", "queue": "LDQ", "depth": 1},
            {"c": 2, "o": "mem", "k": "accept", "kind": "load", "addr": 8,
             "bytes": 4, "demand": True, "fpu": False, "seq": 1},
            {"c": 3, "o": "sim", "k": "end", "cycles": 3, "instructions": 0,
             "halted": True},
        ]
        metrics = TraceMetrics.from_events(events)
        payload = json.loads(json.dumps(metrics.to_dict()))
        assert TraceMetrics.from_dict(payload) == metrics

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [
                        ("icache", "hit", {"addr": 0}),
                        ("icache", "miss", {"addr": 0, "seq": 1}),
                        ("backend", "issue", {"pc": 0}),
                        ("backend", "stall", {"reason": "ldq_empty"}),
                        ("queue", "push", {"queue": "LAQ", "depth": 1}),
                        ("queue", "pop", {"queue": "LAQ", "depth": 0}),
                        ("iq", "push", {"pc": 0, "depth": 1, "bytes": 4}),
                        ("mem", "conflict", {"candidates": 2}),
                        ("engine", "hazard", {"addr": 16}),
                    ]
                ),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=60,
        )
    )
    def test_round_trip_holds_for_any_event_mix(self, stream):
        """Property: serialising the aggregate never loses information."""
        records = [
            {"c": cycle, "o": component, "k": kind, **fields}
            for (component, kind, fields), cycle in stream
        ]
        metrics = TraceMetrics.from_events(records)
        payload = json.loads(json.dumps(metrics.to_dict()))
        restored = TraceMetrics.from_dict(payload)
        assert restored == metrics
        assert restored.events == len(records)


class TestMergeTraceFiles:
    def test_concatenates_in_given_order(self, tmp_path):
        parts = []
        for index in range(3):
            part = tmp_path / f"part-{index}.jsonl"
            part.write_text(f'{{"c":{index},"o":"sim","k":"begin"}}\n')
            parts.append(part)
        destination = tmp_path / "merged.jsonl"
        written = merge_trace_files(parts, destination)
        assert written == destination.stat().st_size
        assert [e["c"] for e in read_trace(destination)] == [0, 1, 2]

    def test_missing_part_raises(self, tmp_path):
        with pytest.raises(OSError):
            merge_trace_files([tmp_path / "absent.jsonl"], tmp_path / "out.jsonl")

    @given(chunks=st.lists(st.binary(max_size=64), max_size=8))
    def test_merge_equals_concatenation(self, tmp_path_factory, chunks):
        """Property: the merged file is exactly the parts joined in order."""
        tmp_path = tmp_path_factory.mktemp("merge")
        parts = []
        for index, chunk in enumerate(chunks):
            part = tmp_path / f"part-{index}"
            part.write_bytes(chunk)
            parts.append(part)
        destination = tmp_path / "merged"
        written = merge_trace_files(parts, destination)
        expected = b"".join(chunks)
        assert destination.read_bytes() == expected
        assert written == len(expected)
