"""Behavioural tests of the Target Instruction Buffer frontend."""

import pytest

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.simulator import Simulator, simulate
from repro.cpu.functional import FunctionalSimulator

LOOP = """
    li r1, 30
    lbr b0, loop
    loop:
    nop
    nop
    subi r1, r1, 1
    pbrne b0, r1, 2
    nop
    nop
    halt
"""


def run(source, config):
    return simulate(config, assemble(source))


class TestSemantics:
    def test_matches_functional(self, tiny_program):
        functional = FunctionalSimulator(tiny_program)
        functional_result = functional.run()
        simulator = Simulator(
            MachineConfig.tib(4, 16, memory_access_time=6), tiny_program
        )
        result = simulator.run()
        assert result.instructions == functional_result.instructions
        assert bytes(simulator.engine.memory) == bytes(functional.memory)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig.tib(0, 16)
        with pytest.raises(ValueError):
            MachineConfig.tib(4, 2)
        with pytest.raises(ValueError):
            MachineConfig.tib(4, 16, stream_buffer_bytes=8)

    def test_describe(self):
        assert "TIB 4x16B" in MachineConfig.tib(4, 16).describe()


class TestTargetCapture:
    def test_first_visit_misses_then_hits(self):
        program = assemble(LOOP)
        simulator = Simulator(MachineConfig.tib(4, 16, memory_access_time=6), program)
        result = simulator.run()
        stats = simulator.frontend.stats
        # 29 taken branches to one target: 1 compulsory miss, 28 hits.
        assert stats.tib_misses == 1
        assert stats.tib_hits == 28
        assert result.halted

    def test_capacity_evictions(self):
        """More hot targets than entries: the LRU entry gets replaced."""
        source = """
            li r1, 20
            lbr b0, a
            lbr b1, b
            lbr b2, c
            a:
            subi r1, r1, 1
            pbrne b1, r1, 1
            nop
            b:
            nop
            pbrne b2, r1, 1
            nop
            c:
            nop
            pbrne b0, r1, 1
            nop
            halt
        """
        program = assemble(source)
        one = Simulator(MachineConfig.tib(1, 16, memory_access_time=6), program)
        one.run()
        four = Simulator(MachineConfig.tib(4, 16, memory_access_time=6), program)
        four.run()
        assert four.frontend.stats.tib_hit_rate > one.frontend.stats.tib_hit_rate

    def test_bigger_entries_supply_more_bytes(self):
        program = assemble(LOOP)
        small = Simulator(MachineConfig.tib(4, 8, memory_access_time=6), program)
        small_result = small.run()
        large = Simulator(MachineConfig.tib(4, 24, memory_access_time=6), program)
        large_result = large.run()
        assert (
            large.frontend.stats.tib_bytes_supplied
            > small.frontend.stats.tib_bytes_supplied
        )
        assert large_result.cycles <= small_result.cycles


class TestOffChipTraffic:
    def test_tib_streams_far_more_than_a_cache(self, tiny_program):
        """Section 2.1: 'the use of a TIB implies large amounts of
        off-chip accessing' — there is no cache to capture loops."""
        tib = simulate(MachineConfig.tib(4, 16, memory_access_time=6), tiny_program)
        cached = simulate(
            MachineConfig.pipe("16-16", 128, memory_access_time=6), tiny_program
        )
        tib_ifetch = (
            tib.memory.ifetch_demand_accepted + tib.memory.ifetch_prefetch_accepted
        )
        pipe_ifetch = (
            cached.memory.ifetch_demand_accepted
            + cached.memory.ifetch_prefetch_accepted
        )
        assert tib_ifetch > pipe_ifetch * 3

    def test_small_tib_beats_small_conventional_cache(self, tiny_program):
        """Section 2.1: 'a small TIB can provide better performance than
        a simple small instruction cache'."""
        tib = simulate(MachineConfig.tib(4, 16, memory_access_time=6), tiny_program)
        conventional = simulate(
            MachineConfig.conventional(32, memory_access_time=6), tiny_program
        )
        assert tib.cycles < conventional.cycles
