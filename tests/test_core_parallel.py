"""Tests of the parallel simulation fan-out."""

import os
import warnings

import pytest

from repro.core.config import MachineConfig
from repro.core.parallel import (
    JOBS_ENV,
    ItemOutcome,
    parallel_map,
    parallel_map_outcomes,
    resolve_jobs,
    simulate_many,
)
from repro.core.simulator import simulate


def _square(x: int) -> int:
    return x * x


def _square_unless_three(x: int) -> int:
    if x == 3:
        raise ValueError("three is right out")
    return x * x


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_environment_beats_cpu_count(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_bad_environment_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "lots")
        with pytest.warns(UserWarning, match="non-integer"):
            assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_unpicklable_fn_falls_back_to_serial(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = parallel_map(lambda x: x + 1, [1, 2, 3], jobs=2)
        assert result == [2, 3, 4]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(boom, [1], jobs=1)


class TestParallelMapOutcomes:
    """Regression: one failed item must not discard completed siblings."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failed_item_keeps_its_siblings(self, jobs):
        outcomes = parallel_map_outcomes(
            _square_unless_three, list(range(6)), jobs=jobs
        )
        assert [o.ok for o in outcomes] == [True, True, True, False, True, True]
        assert [o.value for o in outcomes if o.ok] == [0, 1, 4, 16, 25]
        assert isinstance(outcomes[3].error, ValueError)

    def test_unwrap_returns_or_reraises(self):
        good, bad = parallel_map_outcomes(
            _square_unless_three, [2, 3], jobs=1
        )
        assert good.unwrap() == 4
        with pytest.raises(ValueError, match="three"):
            bad.unwrap()

    def test_empty_input(self):
        assert parallel_map_outcomes(_square, [], jobs=4) == []

    def test_all_successes_match_parallel_map(self):
        items = list(range(10))
        outcomes = parallel_map_outcomes(_square, items, jobs=2)
        assert [o.unwrap() for o in outcomes] == parallel_map(
            _square, items, jobs=2
        )

    def test_unpicklable_fn_falls_back_with_capture_intact(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            outcomes = parallel_map_outcomes(
                lambda x: 1 // x, [1, 0, 2], jobs=2
            )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert isinstance(outcomes[1].error, ZeroDivisionError)

    def test_outcome_defaults(self):
        outcome = ItemOutcome(value=5)
        assert outcome.ok and outcome.unwrap() == 5


class TestSimulateMany:
    def test_parallel_matches_serial_for_all_strategies(self, tiny_program):
        memory = {"memory_access_time": 6, "input_bus_width": 8}
        configs = [
            MachineConfig.pipe("8-8", 128, **memory),
            MachineConfig.pipe("16-16", 128, **memory),
            MachineConfig.pipe("16-32", 128, **memory),
            MachineConfig.pipe("32-32", 128, **memory),
            MachineConfig.conventional(128, **memory),
        ]
        serial = simulate_many(tiny_program, configs, jobs=1)
        parallel = simulate_many(tiny_program, configs, jobs=2)
        assert [r.cycles for r in serial] == [r.cycles for r in parallel]
        assert serial == parallel

    def test_results_align_with_configs(self, tiny_program):
        configs = [
            MachineConfig.conventional(size, memory_access_time=1)
            for size in (32, 64, 128)
        ]
        results = simulate_many(tiny_program, configs, jobs=2)
        for config, result in zip(configs, results):
            assert result.config == config
            assert result == simulate(config, tiny_program)
