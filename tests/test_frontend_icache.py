"""Unit + property tests for the direct-mapped sub-blocked I-cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frontend.icache import InstructionCache


class TestGeometry:
    def test_line_address(self):
        cache = InstructionCache(128, 16)
        assert cache.line_address(0) == 0
        assert cache.line_address(17) == 16
        assert cache.line_address(31) == 16

    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            InstructionCache(100, 16)  # not a multiple
        with pytest.raises(ValueError):
            InstructionCache(128, 10, 4)  # line not multiple of sub-block
        with pytest.raises(ValueError):
            InstructionCache(0, 16)

    def test_num_lines(self):
        cache = InstructionCache(128, 16)
        assert cache.num_lines == 8
        assert cache.sub_blocks_per_line == 4


class TestFillAndProbe:
    def test_miss_then_hit(self):
        cache = InstructionCache(64, 16)
        assert not cache.probe(0, 4)
        cache.fill(0, 16)
        assert cache.probe(0, 16)
        assert cache.probe(12, 4)

    def test_sub_block_granularity(self):
        cache = InstructionCache(64, 16)
        cache.fill(0, 4)
        assert cache.probe(0, 4)
        assert not cache.probe(4, 4)
        assert not cache.probe(0, 8)

    def test_direct_mapped_conflict(self):
        cache = InstructionCache(64, 16)  # 4 lines
        cache.fill(0, 16)
        cache.fill(64, 16)  # same index as address 0
        assert not cache.probe(0, 4)
        assert cache.probe(64, 4)
        assert cache.stats.line_replacements == 1

    def test_partial_fill_invalidates_old_line(self):
        cache = InstructionCache(64, 16)
        cache.fill(0, 16)
        cache.fill(64, 4)  # replaces the tag; only first sub-block valid
        assert not cache.probe(0, 4)
        assert cache.probe(64, 4)
        assert not cache.probe(68, 4)

    def test_range_spanning_lines(self):
        cache = InstructionCache(64, 16)
        cache.fill(0, 32)
        assert cache.probe(12, 8)  # spans the 16-byte boundary

    def test_unaligned_fill_rejected(self):
        cache = InstructionCache(64, 16)
        with pytest.raises(ValueError):
            cache.fill(2, 4)
        with pytest.raises(ValueError):
            cache.fill(0, 6)

    def test_probe_requires_positive_size(self):
        cache = InstructionCache(64, 16)
        with pytest.raises(ValueError):
            cache.probe(0, 0)

    def test_invalidate_all(self):
        cache = InstructionCache(64, 16)
        cache.fill(0, 16)
        cache.invalidate_all()
        assert not cache.probe(0, 4)
        assert cache.resident_bytes() == 0

    def test_resident_bytes(self):
        cache = InstructionCache(64, 16)
        cache.fill(0, 16)
        cache.fill(16, 8)
        assert cache.resident_bytes() == 24


class TestStats:
    def test_lookup_counts(self):
        cache = InstructionCache(64, 16)
        cache.lookup(0, 4)
        cache.fill(0, 16)
        cache.lookup(0, 4)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_empty_hit_rate(self):
        assert InstructionCache(64, 16).stats.hit_rate == 0.0


class TestAgainstModel:
    """Property: the cache agrees with a dictionary model of residency."""

    @given(
        st.lists(
            st.tuples(
                st.booleans(),  # fill (True) or probe (False)
                st.integers(min_value=0, max_value=63),  # sub-block number
            ),
            max_size=200,
        )
    )
    def test_model_equivalence(self, operations):
        line_size, size, sub = 16, 64, 4
        cache = InstructionCache(size, line_size, sub)
        lines = size // line_size
        model: dict[int, set[int]] = {}  # index -> resident absolute sub-blocks
        tags: dict[int, int] = {}
        for is_fill, block in operations:
            address = block * sub
            index = (address // line_size) % lines
            tag = address // (line_size * lines)
            if is_fill:
                cache.fill(address, sub)
                if tags.get(index) != tag:
                    model[index] = set()
                    tags[index] = tag
                model[index].add(block)
            else:
                expected = tags.get(index) == tag and block in model.get(index, set())
                assert cache.probe(address, sub) == expected


class TestSetAssociativity:
    def test_two_way_avoids_direct_mapped_conflict(self):
        """Two lines that conflict direct-mapped coexist two-way."""
        direct = InstructionCache(64, 16, associativity=1)
        direct.fill(0, 16)
        direct.fill(64, 16)  # same index in a 4-line direct-mapped array
        assert not direct.probe(0, 4)

        two_way = InstructionCache(64, 16, associativity=2)
        two_way.fill(0, 16)
        two_way.fill(32, 16)  # same set (2 sets of 2 ways)
        assert two_way.probe(0, 4)
        assert two_way.probe(32, 4)

    def test_lru_replacement(self):
        cache = InstructionCache(32, 16, associativity=2)  # one set, 2 ways
        cache.fill(0, 16)
        cache.fill(16, 16)
        cache.touch(0)  # line 0 most recently used
        cache.fill(32, 16)  # evicts line 16 (LRU)
        assert cache.probe(0, 4)
        assert not cache.probe(16, 4)
        assert cache.probe(32, 4)

    def test_fully_associative(self):
        cache = InstructionCache(64, 16, associativity=4)  # one set
        for base in (0, 128, 256, 384):
            cache.fill(base, 16)
        for base in (0, 128, 256, 384):
            assert cache.probe(base, 4)
        cache.fill(512, 16)  # evicts the LRU (address 0)
        assert not cache.probe(0, 4)

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            InstructionCache(64, 16, associativity=0)
        with pytest.raises(ValueError):
            InstructionCache(48, 16, associativity=2)  # not a multiple

    def test_lookup_touches_lru(self):
        cache = InstructionCache(32, 16, associativity=2)
        cache.fill(0, 16)
        cache.fill(16, 16)
        assert cache.lookup(0, 4)  # touch line 0
        cache.fill(32, 16)
        assert cache.probe(0, 4)  # survived: line 16 was evicted
        assert not cache.probe(16, 4)

    def test_associative_machine_runs(self):
        """End to end through the simulator with a 2-way cache."""
        from repro.asm import assemble
        from repro.core.config import MachineConfig
        from repro.core.simulator import simulate

        program = assemble("\n".join(["nop"] * 30) + "\nhalt")
        direct = simulate(
            MachineConfig.conventional(64, memory_access_time=6), program
        )
        two_way = simulate(
            MachineConfig.conventional(
                64, memory_access_time=6, cache_associativity=2
            ),
            program,
        )
        assert direct.instructions == two_way.instructions
        assert two_way.halted
