"""Tests of the fault-tolerant execution layer (repro.core.resilience)."""

import json
import os
import time

import pytest

from repro.core.config import MachineConfig
from repro.core.parallel import simulate_many
from repro.core.resilience import (
    FaultReport,
    SweepCheckpoint,
    SweepPointError,
    SweepSupervisor,
    ladder_simulate,
    supervised_map,
    supervised_simulate_many,
)
from repro.core.simcache import SimulationCache
from repro.core.simulator import simulate
from repro.core.sweep import run_cache_sweep


def _pipe(**overrides) -> MachineConfig:
    return MachineConfig.pipe(
        "16-16", 128, memory_access_time=6, input_bus_width=8, **overrides
    )


# ----------------------------------------------------------------------
# Worker bodies for the pool tests (module-level: they must pickle).
# Each misbehaves exactly once per item, coordinated through a marker
# file, so the supervisor's retry must succeed.
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def _claim_marker(directory: str, name: str) -> bool:
    try:
        fd = os.open(
            os.path.join(directory, name), os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _fail_once(task) -> int:
    x, directory = task
    if _claim_marker(directory, f"fail-{x}"):
        raise RuntimeError(f"transient failure for {x}")
    return x * x


def _fail_always(task) -> int:
    x, _directory = task
    if x == 2:
        raise ValueError(f"permanently broken item {x}")
    return x * x


def _kill_once(task) -> int:
    x, directory, kill = task
    if kill and _claim_marker(directory, f"kill-{x}"):
        os._exit(33)
    return x * x


def _sleep_once(task) -> int:
    x, directory, hang = task
    if hang and _claim_marker(directory, f"hang-{x}"):
        time.sleep(10.0)
    return x * x


class TestFaultReport:
    def test_starts_clean(self):
        report = FaultReport()
        assert report.clean
        assert "clean" in report.summary()

    def test_record_and_counts(self):
        report = FaultReport()
        report.record("p1", "retry", detail="boom", attempt=1)
        report.record("p2", "retry", attempt=1)
        report.record("p1", "degraded", rung="idle-skip")
        assert not report.clean
        assert report.counts() == {"retry": 2, "degraded": 1}
        summary = report.summary()
        assert "3 recovery action(s)" in summary
        assert "rung idle-skip" in summary

    def test_to_dict_is_json_serializable(self):
        report = FaultReport()
        report.record("p1", "timeout", attempt=2)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["counts"] == {"timeout": 1}
        assert payload["events"][0]["point"] == "p1"


class TestSupervisedMapSerial:
    def test_matches_plain_map(self):
        items = list(range(8))
        assert supervised_map(_square, items, jobs=1) == [x * x for x in items]

    def test_empty_input(self):
        assert supervised_map(_square, [], jobs=1) == []

    def test_on_result_fires_in_completion_order(self):
        seen = []
        supervised_map(
            _square,
            [1, 2, 3],
            jobs=1,
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_transient_failure_is_retried(self, tmp_path):
        report = FaultReport()
        tasks = [(x, str(tmp_path)) for x in range(4)]
        values = supervised_map(
            _fail_once, tasks, jobs=1, max_retries=2, backoff=0, report=report
        )
        assert values == [x * x for x in range(4)]
        assert report.counts()["retry"] == 4  # every item failed once

    def test_permanent_failure_raises_after_siblings_finish(self, tmp_path):
        report = FaultReport()
        delivered = []
        tasks = [(x, str(tmp_path)) for x in range(4)]
        with pytest.raises(SweepPointError) as excinfo:
            supervised_map(
                _fail_always,
                tasks,
                jobs=1,
                max_retries=1,
                backoff=0,
                report=report,
                labels=[f"item{x}" for x in range(4)],
                on_result=lambda index, value: delivered.append(index),
            )
        # every recoverable sibling completed before the raise
        assert delivered == [0, 1, 3]
        (label, exc), = excinfo.value.failures
        assert label == "item2" and isinstance(exc, ValueError)
        assert report.counts()["gave_up"] == 1

    def test_no_retry_types_fail_on_the_first_attempt(self, tmp_path):
        report = FaultReport()
        tasks = [(x, str(tmp_path)) for x in (2,)]
        with pytest.raises(SweepPointError):
            supervised_map(
                _fail_always,
                tasks,
                jobs=1,
                max_retries=5,
                backoff=0,
                report=report,
                no_retry=(ValueError,),
            )
        gave_up = [e for e in report.events if e.kind == "gave_up"]
        assert len(gave_up) == 1 and gave_up[0].attempt == 1


class TestSupervisedMapPool:
    def test_pool_matches_serial(self, tmp_path):
        tasks = [(x, str(tmp_path), False) for x in range(8)]
        assert supervised_map(_kill_once, tasks, jobs=2) == [
            x * x for x in range(8)
        ]

    def test_worker_crash_respawns_and_requeues(self, tmp_path):
        report = FaultReport()
        tasks = [(x, str(tmp_path), x == 1) for x in range(5)]
        values = supervised_map(
            _kill_once, tasks, jobs=2, max_retries=3, backoff=0, report=report
        )
        assert values == [x * x for x in range(5)]
        counts = report.counts()
        assert counts.get("worker_crash", 0) >= 1
        assert counts.get("pool_respawn", 0) >= 1

    def test_hung_point_times_out_and_recovers(self, tmp_path):
        report = FaultReport()
        tasks = [(x, str(tmp_path), x == 0) for x in range(3)]
        values = supervised_map(
            _sleep_once,
            tasks,
            jobs=2,
            timeout=1.0,
            max_retries=3,
            backoff=0,
            report=report,
        )
        assert values == [x * x for x in range(3)]
        assert report.counts().get("timeout", 0) >= 1


class TestLadderSimulate:
    def test_clean_point_uses_the_top_rung(self, tiny_program):
        report = FaultReport()
        result, rung = ladder_simulate(_pipe(), tiny_program, report=report)
        assert rung == "compiled"
        assert report.clean
        # Satellite: the serving rung is tallied even on full success.
        assert report.rungs == {"compiled": 1}
        assert result == simulate(_pipe(), tiny_program)

    def test_rung_tally_follows_the_escape_hatch(self, tiny_program, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMPILED", "1")
        report = FaultReport()
        _result, rung = ladder_simulate(_pipe(), tiny_program, report=report)
        assert rung == "compiled"  # top rung tried first ...
        # ... but its kwargs defer to the env, so the run was interpreted;
        # the tally still attributes the point to the serving rung label.
        assert report.rungs == {"compiled": 1}
        assert report.clean


class TestSupervisedSimulateMany:
    def test_matches_unsupervised(self, tiny_program):
        configs = [
            _pipe(),
            _pipe().with_overrides(icache_size=64),
            MachineConfig.conventional(
                128, memory_access_time=6, input_bus_width=8
            ),
        ]
        plain = simulate_many(tiny_program, configs, jobs=1)
        report = FaultReport()
        supervised = supervised_simulate_many(
            tiny_program, configs, jobs=2, report=report
        )
        assert supervised == plain
        assert report.clean


class TestSweepCheckpoint:
    def test_round_trip(self, tiny_program, tmp_path):
        result = simulate(_pipe(), tiny_program)
        checkpoint = SweepCheckpoint(tmp_path / "ck.json", interval=100)
        checkpoint.add("key1", result)
        checkpoint.flush()
        reopened = SweepCheckpoint(tmp_path / "ck.json")
        assert reopened.load() == 1
        assert reopened.get("key1") == result
        assert reopened.get("other") is None

    def test_flushes_every_interval(self, tiny_program, tmp_path):
        result = simulate(_pipe(), tiny_program)
        checkpoint = SweepCheckpoint(tmp_path / "ck.json", interval=2)
        checkpoint.add("k1", result)
        assert not (tmp_path / "ck.json").exists()
        checkpoint.add("k2", result)
        assert (tmp_path / "ck.json").exists()

    def test_corrupt_manifest_starts_empty(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{torn write")
        checkpoint = SweepCheckpoint(path)
        assert checkpoint.load() == 0
        assert len(checkpoint) == 0

    def test_wrong_version_starts_empty(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 999, "points": {"k": {}}}))
        assert SweepCheckpoint(path).load() == 0

    def test_no_temp_droppings(self, tiny_program, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "ck.json", interval=1)
        checkpoint.add("k1", simulate(_pipe(), tiny_program))
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


class TestSupervisedSweep:
    def test_matches_unsupervised_and_attaches_report(
        self, tiny_program, tmp_path
    ):
        plain = run_cache_sweep(tiny_program, cache_sizes=[64, 128], jobs=1)
        supervisor = SweepSupervisor(
            jobs=1, checkpoint=SweepCheckpoint(tmp_path / "ck.json")
        )
        supervised = run_cache_sweep(
            tiny_program,
            cache_sizes=[64, 128],
            cache=SimulationCache(tmp_path / "cache"),
            supervisor=supervisor,
        )
        assert [s.cycles for s in supervised] == [s.cycles for s in plain]
        assert all(s.fault_report is supervisor.report for s in supervised)
        assert supervisor.report.clean
        # every completed point was checkpointed
        assert len(supervisor.checkpoint) == sum(
            len(s.cycles) for s in supervised
        )

    def test_resume_pre_resolves_from_the_checkpoint(
        self, tiny_program, tmp_path
    ):
        first = SweepSupervisor(
            jobs=1, checkpoint=SweepCheckpoint(tmp_path / "ck.json")
        )
        baseline = run_cache_sweep(
            tiny_program, cache_sizes=[64], supervisor=first
        )
        resumer = SweepSupervisor(
            jobs=1,
            checkpoint=SweepCheckpoint(tmp_path / "ck.json"),
            resume=True,
        )
        resumer.checkpoint.load()
        resumed = run_cache_sweep(
            tiny_program, cache_sizes=[64], supervisor=resumer
        )
        assert resumer.resumed == sum(len(s.cycles) for s in baseline)
        assert [s.cycles for s in resumed] == [s.cycles for s in baseline]

    def test_stale_checkpoint_entries_never_match(self, tiny_program, tmp_path):
        # A manifest keyed by different content (another cache size) must
        # not satisfy this sweep's points.
        first = SweepSupervisor(
            jobs=1, checkpoint=SweepCheckpoint(tmp_path / "ck.json")
        )
        run_cache_sweep(tiny_program, cache_sizes=[32], supervisor=first)
        resumer = SweepSupervisor(
            jobs=1,
            checkpoint=SweepCheckpoint(tmp_path / "ck.json"),
            resume=True,
        )
        resumer.checkpoint.load()
        run_cache_sweep(tiny_program, cache_sizes=[256], supervisor=resumer)
        assert resumer.resumed == 0
