"""Tests of the fault-tolerant execution layer (repro.core.resilience)."""

import json
import os
import time

import pytest

from repro.core.config import MachineConfig
from repro.core.parallel import simulate_many
from repro.core.resilience import (
    BreakerBoard,
    CheckpointLockError,
    CircuitBreaker,
    FaultReport,
    SweepCheckpoint,
    SweepPointError,
    SweepSupervisor,
    ladder_simulate,
    retry_backoff,
    supervised_map,
    supervised_simulate_many,
)
from repro.core.simcache import SimulationCache
from repro.core.simulator import simulate
from repro.core.sweep import run_cache_sweep


def _pipe(**overrides) -> MachineConfig:
    return MachineConfig.pipe(
        "16-16", 128, memory_access_time=6, input_bus_width=8, **overrides
    )


# ----------------------------------------------------------------------
# Worker bodies for the pool tests (module-level: they must pickle).
# Each misbehaves exactly once per item, coordinated through a marker
# file, so the supervisor's retry must succeed.
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def _claim_marker(directory: str, name: str) -> bool:
    try:
        fd = os.open(
            os.path.join(directory, name), os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _fail_once(task) -> int:
    x, directory = task
    if _claim_marker(directory, f"fail-{x}"):
        raise RuntimeError(f"transient failure for {x}")
    return x * x


def _fail_always(task) -> int:
    x, _directory = task
    if x == 2:
        raise ValueError(f"permanently broken item {x}")
    return x * x


def _kill_once(task) -> int:
    x, directory, kill = task
    if kill and _claim_marker(directory, f"kill-{x}"):
        os._exit(33)
    return x * x


def _sleep_once(task) -> int:
    x, directory, hang = task
    if hang and _claim_marker(directory, f"hang-{x}"):
        time.sleep(10.0)
    return x * x


class TestFaultReport:
    def test_starts_clean(self):
        report = FaultReport()
        assert report.clean
        assert "clean" in report.summary()

    def test_record_and_counts(self):
        report = FaultReport()
        report.record("p1", "retry", detail="boom", attempt=1)
        report.record("p2", "retry", attempt=1)
        report.record("p1", "degraded", rung="idle-skip")
        assert not report.clean
        assert report.counts() == {"retry": 2, "degraded": 1}
        summary = report.summary()
        assert "3 recovery action(s)" in summary
        assert "rung idle-skip" in summary

    def test_to_dict_is_json_serializable(self):
        report = FaultReport()
        report.record("p1", "timeout", attempt=2)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["counts"] == {"timeout": 1}
        assert payload["events"][0]["point"] == "p1"


class TestSupervisedMapSerial:
    def test_matches_plain_map(self):
        items = list(range(8))
        assert supervised_map(_square, items, jobs=1) == [x * x for x in items]

    def test_empty_input(self):
        assert supervised_map(_square, [], jobs=1) == []

    def test_on_result_fires_in_completion_order(self):
        seen = []
        supervised_map(
            _square,
            [1, 2, 3],
            jobs=1,
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_transient_failure_is_retried(self, tmp_path):
        report = FaultReport()
        tasks = [(x, str(tmp_path)) for x in range(4)]
        values = supervised_map(
            _fail_once, tasks, jobs=1, max_retries=2, backoff=0, report=report
        )
        assert values == [x * x for x in range(4)]
        assert report.counts()["retry"] == 4  # every item failed once

    def test_permanent_failure_raises_after_siblings_finish(self, tmp_path):
        report = FaultReport()
        delivered = []
        tasks = [(x, str(tmp_path)) for x in range(4)]
        with pytest.raises(SweepPointError) as excinfo:
            supervised_map(
                _fail_always,
                tasks,
                jobs=1,
                max_retries=1,
                backoff=0,
                report=report,
                labels=[f"item{x}" for x in range(4)],
                on_result=lambda index, value: delivered.append(index),
            )
        # every recoverable sibling completed before the raise
        assert delivered == [0, 1, 3]
        (label, exc), = excinfo.value.failures
        assert label == "item2" and isinstance(exc, ValueError)
        assert report.counts()["gave_up"] == 1

    def test_no_retry_types_fail_on_the_first_attempt(self, tmp_path):
        report = FaultReport()
        tasks = [(x, str(tmp_path)) for x in (2,)]
        with pytest.raises(SweepPointError):
            supervised_map(
                _fail_always,
                tasks,
                jobs=1,
                max_retries=5,
                backoff=0,
                report=report,
                no_retry=(ValueError,),
            )
        gave_up = [e for e in report.events if e.kind == "gave_up"]
        assert len(gave_up) == 1 and gave_up[0].attempt == 1


class TestSupervisedMapPool:
    def test_pool_matches_serial(self, tmp_path):
        tasks = [(x, str(tmp_path), False) for x in range(8)]
        assert supervised_map(_kill_once, tasks, jobs=2) == [
            x * x for x in range(8)
        ]

    def test_worker_crash_respawns_and_requeues(self, tmp_path):
        report = FaultReport()
        tasks = [(x, str(tmp_path), x == 1) for x in range(5)]
        values = supervised_map(
            _kill_once, tasks, jobs=2, max_retries=3, backoff=0, report=report
        )
        assert values == [x * x for x in range(5)]
        counts = report.counts()
        assert counts.get("worker_crash", 0) >= 1
        assert counts.get("pool_respawn", 0) >= 1

    def test_hung_point_times_out_and_recovers(self, tmp_path):
        report = FaultReport()
        tasks = [(x, str(tmp_path), x == 0) for x in range(3)]
        values = supervised_map(
            _sleep_once,
            tasks,
            jobs=2,
            timeout=1.0,
            max_retries=3,
            backoff=0,
            report=report,
        )
        assert values == [x * x for x in range(3)]
        assert report.counts().get("timeout", 0) >= 1


class TestLadderSimulate:
    def test_clean_point_uses_the_top_rung(self, tiny_program):
        report = FaultReport()
        result, rung = ladder_simulate(_pipe(), tiny_program, report=report)
        assert rung == "compiled"
        assert report.clean
        # Satellite: the serving rung is tallied even on full success.
        assert report.rungs == {"compiled": 1}
        assert result == simulate(_pipe(), tiny_program)

    def test_rung_tally_follows_the_escape_hatch(self, tiny_program, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMPILED", "1")
        report = FaultReport()
        _result, rung = ladder_simulate(_pipe(), tiny_program, report=report)
        assert rung == "compiled"  # top rung tried first ...
        # ... but its kwargs defer to the env, so the run was interpreted;
        # the tally still attributes the point to the serving rung label.
        assert report.rungs == {"compiled": 1}
        assert report.clean


class TestSupervisedSimulateMany:
    def test_matches_unsupervised(self, tiny_program):
        configs = [
            _pipe(),
            _pipe().with_overrides(icache_size=64),
            MachineConfig.conventional(
                128, memory_access_time=6, input_bus_width=8
            ),
        ]
        plain = simulate_many(tiny_program, configs, jobs=1)
        report = FaultReport()
        supervised = supervised_simulate_many(
            tiny_program, configs, jobs=2, report=report
        )
        assert supervised == plain
        assert report.clean


class TestSweepCheckpoint:
    def test_round_trip(self, tiny_program, tmp_path):
        result = simulate(_pipe(), tiny_program)
        checkpoint = SweepCheckpoint(tmp_path / "ck.json", interval=100)
        checkpoint.add("key1", result)
        checkpoint.flush()
        reopened = SweepCheckpoint(tmp_path / "ck.json")
        assert reopened.load() == 1
        assert reopened.get("key1") == result
        assert reopened.get("other") is None

    def test_flushes_every_interval(self, tiny_program, tmp_path):
        result = simulate(_pipe(), tiny_program)
        checkpoint = SweepCheckpoint(tmp_path / "ck.json", interval=2)
        checkpoint.add("k1", result)
        assert not (tmp_path / "ck.json").exists()
        checkpoint.add("k2", result)
        assert (tmp_path / "ck.json").exists()

    def test_corrupt_manifest_starts_empty(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{torn write")
        checkpoint = SweepCheckpoint(path)
        assert checkpoint.load() == 0
        assert len(checkpoint) == 0

    def test_wrong_version_starts_empty(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 999, "points": {"k": {}}}))
        assert SweepCheckpoint(path).load() == 0

    def test_no_temp_droppings(self, tiny_program, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "ck.json", interval=1)
        checkpoint.add("k1", simulate(_pipe(), tiny_program))
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


class TestSupervisedSweep:
    def test_matches_unsupervised_and_attaches_report(
        self, tiny_program, tmp_path
    ):
        plain = run_cache_sweep(tiny_program, cache_sizes=[64, 128], jobs=1)
        supervisor = SweepSupervisor(
            jobs=1, checkpoint=SweepCheckpoint(tmp_path / "ck.json")
        )
        supervised = run_cache_sweep(
            tiny_program,
            cache_sizes=[64, 128],
            cache=SimulationCache(tmp_path / "cache"),
            supervisor=supervisor,
        )
        assert [s.cycles for s in supervised] == [s.cycles for s in plain]
        assert all(s.fault_report is supervisor.report for s in supervised)
        assert supervisor.report.clean
        # every completed point was checkpointed
        assert len(supervisor.checkpoint) == sum(
            len(s.cycles) for s in supervised
        )

    def test_resume_pre_resolves_from_the_checkpoint(
        self, tiny_program, tmp_path
    ):
        first = SweepSupervisor(
            jobs=1, checkpoint=SweepCheckpoint(tmp_path / "ck.json")
        )
        baseline = run_cache_sweep(
            tiny_program, cache_sizes=[64], supervisor=first
        )
        resumer = SweepSupervisor(
            jobs=1,
            checkpoint=SweepCheckpoint(tmp_path / "ck.json"),
            resume=True,
        )
        resumer.checkpoint.load()
        resumed = run_cache_sweep(
            tiny_program, cache_sizes=[64], supervisor=resumer
        )
        assert resumer.resumed == sum(len(s.cycles) for s in baseline)
        assert [s.cycles for s in resumed] == [s.cycles for s in baseline]

    def test_stale_checkpoint_entries_never_match(self, tiny_program, tmp_path):
        # A manifest keyed by different content (another cache size) must
        # not satisfy this sweep's points.
        first = SweepSupervisor(
            jobs=1, checkpoint=SweepCheckpoint(tmp_path / "ck.json")
        )
        run_cache_sweep(tiny_program, cache_sizes=[32], supervisor=first)
        resumer = SweepSupervisor(
            jobs=1,
            checkpoint=SweepCheckpoint(tmp_path / "ck.json"),
            resume=True,
        )
        resumer.checkpoint.load()
        run_cache_sweep(tiny_program, cache_sizes=[256], supervisor=resumer)
        assert resumer.resumed == 0


class TestRetryBackoff:
    def test_deterministic_for_fixed_inputs(self):
        first = retry_backoff(0.25, 3, "point-a", seed=7)
        second = retry_backoff(0.25, 3, "point-a", seed=7)
        assert first == second

    def test_distinct_points_get_distinct_delays(self):
        delays = {
            retry_backoff(0.25, 2, f"point-{n}", seed=7) for n in range(16)
        }
        # Decorrelation is the whole purpose: a respawned pool must not
        # see every interrupted point return in lockstep.
        assert len(delays) > 1

    def test_bounded_by_base_and_cap(self):
        for attempt in range(1, 12):
            delay = retry_backoff(0.25, attempt, "k", seed=3)
            assert 0.0 < delay <= 0.25 * 16.0
        assert retry_backoff(0.25, 9, "k", cap=1.0, seed=3) <= 1.0

    def test_zero_base_or_attempt_disables(self):
        assert retry_backoff(0.0, 3, "k") == 0.0
        assert retry_backoff(0.25, 0, "k") == 0.0

    def test_seed_comes_from_the_active_fault_plan(self):
        from repro.core import faults

        faults.deactivate()
        try:
            disarmed = retry_backoff(0.25, 2, "k")
            assert disarmed == retry_backoff(0.25, 2, "k", seed=0)
            faults.activate(faults.FaultPlan(seed=99))
            armed = retry_backoff(0.25, 2, "k")
            assert armed == retry_backoff(0.25, 2, "k", seed=99)
        finally:
            faults.deactivate()


class TestCircuitBreaker:
    def _breaker(self, threshold=2, cooldown=10.0):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=threshold, cooldown=cooldown, clock=lambda: clock[0]
        )
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _clock = self._breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_success_resets_the_failure_count(self):
        breaker, _clock = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_hands_out_one_probe_token(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 11.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller: still blocked

    def test_probe_success_closes(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] = 20.0  # only 9s since the re-open
        assert not breaker.allow()
        clock[0] = 21.5
        assert breaker.allow()

    def test_lost_probe_expires_after_another_cooldown(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.allow()  # probe whose outcome never arrives
        clock[0] = 22.0
        assert breaker.allow()  # replacement probe: no wedged half-open

    def test_to_dict_surface(self):
        breaker, _clock = self._breaker()
        payload = breaker.to_dict()
        assert payload["state"] == "closed"
        assert payload["opened_count"] == 0


class TestBreakerBoard:
    def test_reference_rung_never_has_a_breaker(self):
        board = BreakerBoard()
        assert "reference" not in board.breakers
        assert board.effective_rungs()[-1] == "reference"

    def test_open_breaker_drops_its_rung_from_the_ladder(self):
        clock = [0.0]
        board = BreakerBoard(threshold=1, cooldown=100.0, clock=lambda: clock[0])
        report = FaultReport()
        report.record("p", "engine_fault", rung="compiled")
        board.observe("replay", report.events)
        assert "compiled" not in board.effective_rungs()
        assert "replay" in board.effective_rungs()

    def test_ladder_never_empties(self):
        clock = [0.0]
        board = BreakerBoard(threshold=1, cooldown=100.0, clock=lambda: clock[0])
        report = FaultReport()
        for rung in board.rungs[:-1]:
            report.record("p", "engine_fault", rung=rung)
        board.observe("reference", report.events)
        assert board.effective_rungs() == ("reference",)

    def test_served_rung_counts_as_success(self):
        clock = [0.0]
        board = BreakerBoard(threshold=2, cooldown=100.0, clock=lambda: clock[0])
        report = FaultReport()
        report.record("p", "engine_fault", rung="compiled")
        board.observe("compiled", report.events)  # failed once, then served
        board.observe("compiled", [])
        assert board.breakers["compiled"].state == "closed"

    def test_rejects_empty_rungs(self):
        with pytest.raises(ValueError):
            BreakerBoard(rungs=())


class TestLadderRungRestriction:
    def test_restricted_ladder_matches_full_ladder(self, tiny_program):
        config = _pipe()
        full, _rung = ladder_simulate(config, tiny_program)
        restricted, rung = ladder_simulate(
            config, tiny_program, rungs=("idle-skip", "reference")
        )
        assert restricted.checksum() == full.checksum()
        assert rung == "idle-skip"

    def test_unknown_rung_rejected(self, tiny_program):
        with pytest.raises(ValueError):
            ladder_simulate(_pipe(), tiny_program, rungs=("warp-drive",))
        with pytest.raises(ValueError):
            ladder_simulate(_pipe(), tiny_program, rungs=())


class TestCheckpointLock:
    def test_acquire_release_round_trip(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "ck.json")
        checkpoint.acquire()
        assert checkpoint.locked
        assert checkpoint.lock_path.exists()
        assert checkpoint.lock_path.read_text() == str(os.getpid())
        checkpoint.release()
        assert not checkpoint.locked
        assert not checkpoint.lock_path.exists()

    def test_acquire_is_idempotent_per_instance(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "ck.json")
        checkpoint.acquire()
        checkpoint.acquire()  # no error, still held
        checkpoint.release()

    def test_live_foreign_holder_raises(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "ck.json")
        # The parent pytest process is alive and is not us.
        checkpoint.lock_path.write_text(str(os.getppid()))
        with pytest.raises(CheckpointLockError):
            checkpoint.acquire()

    def test_stale_lock_from_dead_process_is_broken(self, tmp_path):
        import subprocess
        import sys

        child = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(child.stdout.strip())
        checkpoint = SweepCheckpoint(tmp_path / "ck.json")
        checkpoint.lock_path.write_text(str(dead_pid))
        checkpoint.acquire()  # broken and re-claimed, no error
        assert checkpoint.locked
        checkpoint.release()

    def test_unreadable_lock_is_treated_as_stale(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "ck.json")
        checkpoint.lock_path.write_text("not-a-pid")
        checkpoint.acquire()
        checkpoint.release()

    def test_same_process_reacquire_across_instances(self, tmp_path):
        # Two sequential supervised runs in one process (the CLI does
        # this, and so do tests) must not dead-lock against themselves:
        # the lock excludes other *processes*.
        first = SweepCheckpoint(tmp_path / "ck.json")
        first.acquire()
        second = SweepCheckpoint(tmp_path / "ck.json")
        second.acquire()
        assert second.locked
        second.release()

    def test_context_manager(self, tmp_path):
        with SweepCheckpoint(tmp_path / "ck.json") as checkpoint:
            assert checkpoint.locked
        assert not checkpoint.lock_path.exists()

    def test_supervised_sweep_takes_and_conflicts_on_the_lock(
        self, tiny_program, tmp_path
    ):
        supervisor = SweepSupervisor(
            jobs=1, checkpoint=SweepCheckpoint(tmp_path / "ck.json")
        )
        run_cache_sweep(tiny_program, cache_sizes=[64], supervisor=supervisor)
        # The sweep's claim is still held (the CLI releases at exit);
        # a concurrent run in another process would now fail fast.
        assert supervisor.checkpoint.locked
        foreign = SweepCheckpoint(tmp_path / "ck.json")
        foreign.lock_path.write_text(str(os.getppid()))  # simulate: alive
        with pytest.raises(CheckpointLockError):
            foreign.acquire()
        supervisor.checkpoint.release()
