"""Unit tests for the functional (timing-free) simulator."""

import pytest

from repro.asm import assemble
from repro.cpu.functional import (
    FunctionalSimulator,
    MemoryOrderingError,
    SimulationLimitExceeded,
    run_functional,
)
from repro.memory.fpu import (
    FPU_OPERAND_A,
    FPU_RESULT,
    FPU_TRIGGER_MUL,
    bits_to_float,
    float_to_bits,
)


def run(source, **kwargs):
    simulator = FunctionalSimulator(assemble(source), **kwargs)
    result = simulator.run()
    return simulator, result


class TestStraightLine:
    def test_counts_instructions(self):
        _sim, result = run("nop\nnop\nnop\nhalt")
        assert result.instructions == 4
        assert result.halted

    def test_register_compute_and_store(self):
        sim, result = run(
            """
            li r1, 6
            li r2, 7
            add r3, r1, r2
            li r4, 0
            st r4, out
            pushq r3
            halt
            out: .word 0
            """
        )
        out = sim.program.symbols["out"]
        assert sim.read_word(out) == 13
        assert result.stores == 1


class TestLoops:
    def test_pbr_loop_executes_correct_count(self):
        _sim, result = run(
            """
            li r1, 10
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 1
            nop
            halt
            """
        )
        # 2 preamble + 10 iterations * 3 (subi, pbrne, nop) + halt
        assert result.instructions == 2 + 30 + 1
        assert result.branches == 10
        assert result.branches_taken == 9

    def test_delay_zero_branch(self):
        _sim, result = run(
            """
            li r1, 3
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 0
            halt
            """
        )
        assert result.instructions == 2 + 3 * 2 + 1

    def test_delay_slots_execute_on_both_paths(self):
        sim, result = run(
            """
            li r1, 2
            li r2, 0
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 1
            addi r2, r2, 1       ; delay slot: runs every iteration
            li r3, 0
            st r3, out
            pushq r2
            halt
            out: .word 0
            """
        )
        assert sim.read_word(sim.program.symbols["out"]) == 2

    def test_nested_pbr_rejected(self):
        with pytest.raises(RuntimeError, match="branch is pending"):
            run(
                """
                lbr b0, a
                lbr b1, b
                a: pbra b0, 2
                b: pbra b1, 2
                nop
                nop
                nop
                halt
                """
            )


class TestQueues:
    def test_load_store_roundtrip(self):
        sim, _result = run(
            """
            li r1, 0
            ld r1, value
            popq r2
            addi r2, r2, 1
            st r1, value
            pushq r2
            halt
            value: .word 41
            """
        )
        assert sim.read_word(sim.program.symbols["value"]) == 42

    def test_multiple_outstanding_loads_fifo(self):
        sim, _result = run(
            """
            li r1, 0
            ld r1, a
            ld r1, b
            popq r2          ; must be a's value
            popq r3          ; must be b's value
            st r1, a
            pushq r3
            st r1, b
            pushq r2
            halt
            a: .word 1
            b: .word 2
            """
        )
        assert sim.read_word(sim.program.symbols["a"]) == 2
        assert sim.read_word(sim.program.symbols["b"]) == 1

    def test_r7_read_with_no_load_rejected(self):
        with pytest.raises(RuntimeError, match="LDQ"):
            run("popq r1\nhalt")

    def test_halt_with_unpaired_store_rejected(self):
        with pytest.raises(RuntimeError, match="unpaired"):
            run("li r1, 0\nst r1, 0x100\nhalt")

    def test_ordering_hazard_detected(self):
        with pytest.raises(MemoryOrderingError):
            run(
                """
                li r1, 0
                st r1, spot      ; store address pushed...
                ld r1, spot      ; ...load overtakes the missing data
                pushq r1
                popq r2
                halt
                spot: .word 0
                """
            )


class TestFpu:
    def test_multiply_via_memory_map(self):
        sim, result = run(
            f"""
            li r6, {FPU_OPERAND_A & 0xFFFF}
            lih r6, {FPU_OPERAND_A >> 16}
            li r1, 0
            ld r1, a            ; operand A bits
            st r6, 0            ; FPU operand A
            qtoq
            ld r1, b            ; operand B bits
            st r6, {FPU_TRIGGER_MUL - FPU_OPERAND_A}
            qtoq
            ld r6, {FPU_RESULT - FPU_OPERAND_A}
            st r1, out
            qtoq
            halt
            a: .float 1.5
            b: .float 4.0
            out: .word 0
            """
        )
        out = sim.program.symbols["out"]
        assert bits_to_float(sim.read_word(out)) == 6.0
        assert result.fpu_operations == 1

    def test_result_read_before_op_rejected(self):
        with pytest.raises(RuntimeError, match="FPU result"):
            run(
                f"""
                li r6, {FPU_RESULT & 0xFFFF}
                lih r6, {FPU_RESULT >> 16}
                ld r6, 0
                popq r1
                halt
                """
            )


class TestGuards:
    def test_step_limit(self):
        with pytest.raises(SimulationLimitExceeded):
            run("loop: lbr b0, loop\npbra b0, 0\nhalt", max_steps=100)

    def test_unaligned_access_rejected(self):
        with pytest.raises(ValueError, match="unaligned"):
            run("li r1, 2\nld r1, 0\npopq r2\nhalt")

    def test_out_of_range_access_rejected(self):
        with pytest.raises(IndexError):
            run("li r1, 0x7000\nlih r1, 0\nld r1, 0\npopq r2\nhalt",
                )

    def test_region_counting(self):
        program = assemble("nop\nmid: nop\nnop\nhalt")
        mid = program.symbols["mid"]
        result = run_functional(program, regions=[("middle", mid, mid + 8)])
        assert result.by_region["middle"] == 2
