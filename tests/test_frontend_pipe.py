"""Behavioural tests of the PIPE fetch unit (cache + IQ + IQB).

These drive the whole machine on tiny hand-written programs and assert
timing *properties* of the frontend: sustained issue on hits, stockpile
behaviour vs bus width, early branch-target fetch, prefetch promotion.
"""

from repro.asm import assemble
from repro.core.config import MachineConfig
from repro.core.simulator import Simulator, simulate


def straight_line(count):
    return "\n".join(["nop"] * count) + "\nhalt"


def run(source, config):
    return simulate(config, assemble(source))


class TestStraightLineSupply:
    def test_wide_bus_keeps_up_with_issue(self):
        """8-byte bus, 1-cycle memory: instructions arrive at twice the
        consumption rate, so the frontend sustains ~1 issue/cycle."""
        result = run(
            straight_line(64),
            MachineConfig.pipe("16-16", 512, memory_access_time=1),
        )
        assert result.instructions == 65
        assert result.cycles <= 65 * 1.25 + 8

    def test_narrow_bus_cannot_get_ahead(self):
        """4-byte bus: the paper's observation that the bus 'has
        difficulty supplying the processor with instructions faster than
        they are consumed'."""
        wide = run(
            straight_line(64),
            MachineConfig.pipe("16-16", 512, memory_access_time=1, input_bus_width=8),
        )
        narrow = run(
            straight_line(64),
            MachineConfig.pipe("16-16", 512, memory_access_time=1, input_bus_width=4),
        )
        assert narrow.cycles > wide.cycles

    def test_all_hits_after_first_pass(self):
        """A cached loop runs at full issue rate: the second and later
        iterations add exactly the loop length in cycles."""
        source = """
            li r1, 50
            lbr b0, loop
            loop:
            nop
            nop
            subi r1, r1, 1
            pbrne b0, r1, 4
            nop
            nop
            nop
            nop
            halt
        """
        result = run(source, MachineConfig.pipe("16-16", 512, memory_access_time=6))
        # 8 instructions per iteration, 50 iterations, plus preamble/halt
        # and the cold first pass.  Zero steady-state bubbles means the
        # total stays close to the instruction count.
        assert result.instructions == 2 + 8 * 50 + 1
        assert result.cycles <= result.instructions + 120
        assert result.cache.misses <= 4


class TestBranchHandling:
    def test_taken_branch_target_prefetched_early(self):
        """With a long delay, PIPE starts fetching an uncached target at
        resolution time; the conventional cache waits for the redirect.
        PIPE must therefore lose fewer cycles on the jump."""
        source = """
            lbr b0, target
            pbra b0, 4
            nop
            nop
            nop
            nop
            .org 0x100
            target:
            nop
            nop
            halt
        """
        pipe = run(source, MachineConfig.pipe("16-16", 128, memory_access_time=6))
        conv = run(source, MachineConfig.conventional(128, memory_access_time=6))
        assert pipe.cycles < conv.cycles

    def test_not_taken_branch_has_no_penalty_when_cached(self):
        taken_free = """
            li r1, 1
            lbr b0, skip
            pbreq b0, r1, 2
            nop
            nop
            skip:
            halt
        """
        result = run(taken_free, MachineConfig.pipe("16-16", 512, memory_access_time=1))
        assert result.branches == 1
        assert result.branches_taken == 0
        assert result.stalls["branch_unresolved"] == 0

    def test_short_delay_stalls_until_resolution(self):
        """A 0-delay PBR cannot cover the 2-cycle condition latency."""
        source = """
            li r1, 0
            lbr b0, next
            pbreq b0, r1, 0
            next:
            halt
        """
        result = run(source, MachineConfig.pipe("16-16", 512, memory_access_time=1))
        assert result.stalls["branch_unresolved"] >= 1

    def test_squash_discards_wrong_path(self):
        """Sequential instructions staged past a taken branch's delay
        slots are squashed at the redirect."""
        source = """
            li r1, 0
            lbr b0, far
            pbreq b0, r1, 1
            nop
            nop          ; wrong path
            nop          ; wrong path
            far:
            halt
        """
        program = assemble(source)
        simulator = Simulator(
            MachineConfig.pipe("16-16", 512, memory_access_time=1), program
        )
        result = simulator.run()
        assert simulator.frontend.stats.redirects == 1
        assert result.instructions == 5  # li, lbr, pbr, 1 delay slot, halt


class TestPrefetchMechanics:
    def test_prefetch_promotion_happens(self):
        """Starve the IQ while a prefetch is in flight: the request must
        be promoted to demand priority."""
        result = run(
            straight_line(100),
            MachineConfig.pipe("16-16", 512, memory_access_time=6, input_bus_width=4),
        )
        assert result.fetch.prefetch_promotions > 0

    def test_prefetch_requests_are_issued(self):
        result = run(
            straight_line(100),
            MachineConfig.pipe("16-16", 512, memory_access_time=1),
        )
        assert result.fetch.prefetch_requests > 0
        assert result.fetch.demand_requests >= 1

    def test_cache_captures_loop(self):
        """After the first pass, a loop that fits sees no more misses."""
        source = """
            li r1, 30
            lbr b0, loop
            loop:
            subi r1, r1, 1
            pbrne b0, r1, 2
            nop
            nop
            halt
        """
        result = run(source, MachineConfig.pipe("8-8", 128, memory_access_time=6))
        # 4 lines of code at most -> a handful of misses, never per-iteration
        assert result.cache.misses <= 6
        assert result.cache.hits > 25

    def test_small_cache_thrashes(self):
        """A loop bigger than the cache misses every iteration."""
        body = "\n".join(["nop"] * 16)  # 64 bytes of body > 32-byte cache
        source = f"""
            li r1, 20
            lbr b0, loop
            loop:
            {body}
            subi r1, r1, 1
            pbrne b0, r1, 2
            nop
            nop
            halt
        """
        small = run(source, MachineConfig.pipe("16-16", 32, memory_access_time=6))
        large = run(source, MachineConfig.pipe("16-16", 512, memory_access_time=6))
        assert small.cache.misses > 20 * 3
        assert small.cycles > large.cycles * 1.5


class TestIqIqbSizes:
    def test_iq_smaller_than_line_works(self):
        """Configuration 16-32: a 32-byte line drains through a 16-byte
        IQ in two transfers."""
        result = run(
            straight_line(64),
            MachineConfig.pipe("16-32", 128, memory_access_time=1),
        )
        assert result.instructions == 65
        assert result.halted

    def test_iqb_must_hold_a_line(self):
        import pytest

        with pytest.raises(ValueError):
            MachineConfig.pipe("16-16", 128).with_overrides(iqb_size=8)


class TestFetchPolicyGate:
    def test_guaranteed_policy_blocks_fall_through_prefetch(self):
        """With a *not-taken-biased* branch whose fall-through line is
        uncached, true prefetch starts the fall-through fetch while the
        PBR is unresolved; the guaranteed-execution policy must wait and
        therefore lose cycles.  (On the taken-biased Livermore loops the
        two policies tie — the gated prefetches are wrong-path anyway —
        which is exactly what the ablation experiment records.)"""
        from repro.asm import assemble
        from repro.core.simulator import simulate

        # r1 = 1 -> pbreq is NOT taken; fall-through continues far enough
        # to need the next line from memory.
        source = """
            li r1, 1
            lbr b0, elsewhere
            pbreq b0, r1, 0
            .align 16
            nop
            nop
            nop
            nop
            nop
            nop
            nop
            nop
            halt
            .org 0x200
            elsewhere:
            halt
        """
        program = assemble(source)
        base = MachineConfig.pipe("16-16", 512, memory_access_time=6)
        true_prefetch = simulate(base, program)
        guarded = simulate(base.with_overrides(true_prefetch=False), program)
        assert true_prefetch.cycles < guarded.cycles

    def test_policies_tie_on_taken_biased_loops(self, tiny_program):
        from repro.core.simulator import simulate

        base = MachineConfig.pipe("16-16", 128, memory_access_time=6)
        true_prefetch = simulate(base, tiny_program)
        guarded = simulate(
            base.with_overrides(true_prefetch=False), tiny_program
        )
        assert guarded.cycles >= true_prefetch.cycles
        assert (guarded.cycles - true_prefetch.cycles) <= true_prefetch.cycles * 0.02
