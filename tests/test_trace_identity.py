"""Determinism identities: traces survive parallelism and the simcache.

Two properties the trace layer guarantees on top of the simulator's own
determinism:

* ``simulate_many_traced`` produces a **byte-identical** merged trace
  file no matter how many worker processes fan the points out (each
  point streams to its own part file; parts merge in submission order);
* a ``cached_simulate(traced=True)`` cache *hit* returns the same
  aggregated ``trace_metrics`` as the cold run that populated the
  entry, and a hit on a blob stored without metrics re-simulates rather
  than returning a metrics-less result.
"""

import hashlib

from repro.core.config import MachineConfig
from repro.core.parallel import simulate_many_traced
from repro.core.simcache import SimulationCache, cached_simulate
from repro.core.simulator import simulate, simulate_traced
from repro.core.trace import TraceMetrics
from repro.kernels.suite import build_livermore_program


def _sha256(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _sweep_configs() -> list[MachineConfig]:
    return [
        MachineConfig.pipe("16-16", size, memory_access_time=6)
        for size in (64, 128, 256)
    ] + [MachineConfig.conventional(128, memory_access_time=6)]


class TestSerialParallelIdentity:
    def test_merged_trace_is_jobs_invariant(self, tmp_path):
        program = build_livermore_program(scale=0.05, loops=(3,))
        configs = _sweep_configs()
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial = simulate_many_traced(program, configs, serial_path, jobs=1)
        parallel = simulate_many_traced(program, configs, parallel_path, jobs=2)
        assert _sha256(serial_path) == _sha256(parallel_path)
        assert [r.cycles for r in serial] == [r.cycles for r in parallel]
        assert [r.trace_metrics for r in serial] == [
            r.trace_metrics for r in parallel
        ]
        assert all(r.trace_metrics is not None for r in serial)

    def test_traced_run_matches_untraced_timing(self, tmp_path):
        """Attaching sinks must observe, never perturb, the simulation."""
        program = build_livermore_program(scale=0.05, loops=(3,))
        config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
        untraced = simulate(config, program)
        traced = simulate_traced(
            config, program, trace_path=tmp_path / "trace.jsonl"
        )
        assert traced.cycles == untraced.cycles
        assert traced.instructions == untraced.instructions
        assert traced.stalls == untraced.stalls
        assert traced.memory.input_bus_bytes == untraced.memory.input_bus_bytes


class TestSimcacheTracedIdentity:
    def test_hit_returns_cold_runs_metrics(self, tmp_path):
        program = build_livermore_program(scale=0.05, loops=(3,))
        config = MachineConfig.pipe("16-16", 128, memory_access_time=6)
        cache = SimulationCache(tmp_path)
        cold = cached_simulate(config, program, cache=cache, traced=True)
        assert cache.stats.stores == 1 and cache.stats.hits == 0
        warm = cached_simulate(config, program, cache=cache, traced=True)
        assert cache.stats.hits == 1
        assert warm.trace_metrics == cold.trace_metrics is not None
        assert warm.cycles == cold.cycles
        metrics = TraceMetrics.from_dict(warm.trace_metrics)
        assert metrics.verify_against(warm) == []

    def test_metrics_less_blob_is_resimulated(self, tmp_path):
        """A hit on an entry stored by an *untraced* run must not come
        back metrics-less when the caller asked for a traced result."""
        program = build_livermore_program(scale=0.05, loops=(3,))
        config = MachineConfig.conventional(128, memory_access_time=6)
        cache = SimulationCache(tmp_path)
        plain = cached_simulate(config, program, cache=cache)
        assert plain.trace_metrics is None
        traced = cached_simulate(config, program, cache=cache, traced=True)
        assert traced.trace_metrics is not None
        assert traced.cycles == plain.cycles
        assert cache.stats.stores == 2  # the traced rerun re-published
        # and now the metrics-carrying blob serves traced hits directly
        again = cached_simulate(config, program, cache=cache, traced=True)
        assert again.trace_metrics == traced.trace_metrics
        assert cache.stats.stores == 2
