"""Unit tests for architectural register state."""

import pytest

from repro.cpu.state import ArchState
from repro.isa.registers import QUEUE_REGISTER


class TestDataRegisters:
    def test_read_write(self):
        state = ArchState()
        state.write(3, 42)
        assert state.read(3) == 42

    def test_values_wrap_to_32_bits(self):
        state = ArchState()
        state.write(1, 2**32 + 5)
        assert state.read(1) == 5

    def test_queue_register_rejected(self):
        state = ArchState()
        with pytest.raises(ValueError):
            state.read(QUEUE_REGISTER)
        with pytest.raises(ValueError):
            state.write(QUEUE_REGISTER, 1)

    def test_out_of_range_rejected(self):
        state = ArchState()
        with pytest.raises(ValueError):
            state.read(8)


class TestBankExchange:
    def test_exchange_swaps(self):
        state = ArchState()
        state.write(0, 111)
        state.exchange_banks()
        assert state.read(0) == 0  # background bank starts zeroed
        state.write(0, 222)
        state.exchange_banks()
        assert state.read(0) == 111
        state.exchange_banks()
        assert state.read(0) == 222

    def test_exchange_preserves_branch_registers(self):
        state = ArchState()
        state.write_branch(2, 0x40)
        state.exchange_banks()
        assert state.read_branch(2) == 0x40


class TestBranchRegisters:
    def test_read_write(self):
        state = ArchState()
        state.write_branch(5, 1000)
        assert state.read_branch(5) == 1000

    def test_range_checked(self):
        state = ArchState()
        with pytest.raises(ValueError):
            state.write_branch(8, 0)

    def test_snapshot(self):
        state = ArchState()
        state.write(1, 7)
        snap = state.snapshot()
        assert snap["foreground"][1] == 7
        assert len(snap["background"]) == 8
        assert len(snap["branch"]) == 8
