"""Shared fixtures: cached benchmark builds at several scales.

Building and assembling the Livermore suite is the expensive part of
the test suite, so scaled-down builds are shared session-wide.  The
suite builder itself memoises by (format, scale, seed), making these
fixtures cheap for every module that needs a program.
"""

from __future__ import annotations

import os

# Hermetic by default: tests must not read or write the persistent
# codegen artifact store in the developer's working tree (and stale
# artifacts must never mask codegen regressions).  Store-specific tests
# re-enable it against a tmp_path cache root.
os.environ.setdefault("REPRO_NO_DISK_CODEGEN", "1")

import pytest

from repro.kernels.suite import cached_livermore_suite


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.jsonl from the current simulator "
        "instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request):
    return request.config.getoption("--update-goldens")

#: Scales used across the test suite.  "tiny" keeps every kernel at a
#: handful of iterations (fast semantic checks); "small" is large enough
#: for cache/queue behaviour to be representative of the full benchmark.
TINY_SCALE = 0.03
SMALL_SCALE = 0.10


@pytest.fixture(scope="session")
def tiny_suite():
    return cached_livermore_suite(scale=TINY_SCALE)


@pytest.fixture(scope="session")
def small_suite():
    return cached_livermore_suite(scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def tiny_program(tiny_suite):
    return tiny_suite.program


@pytest.fixture(scope="session")
def small_program(small_suite):
    return small_suite.program
