"""Unit tests for the steady-state replay engine's foundations.

Covers the satellite guarantees of the replay work: ``state_signature``
is pure (fingerprinting never perturbs the machine), equal machine
states produce equal (and equal-hashing) signatures, and the
:class:`~repro.core.replay.StatsBook` counter ledger is *complete* —
it covers every counter a simulation reports and fails loudly when a
stats object grows a field it cannot delta.
"""

import dataclasses

import pytest

from repro.core.config import MachineConfig
from repro.core.replay import MAX_FIELDS, ReplayController, StatsBook, machine_signature
from repro.core.simulator import Simulator
from repro.kernels.suite import build_livermore_program


@pytest.fixture(scope="module")
def loop_program():
    return build_livermore_program(scale=0.05, loops=(3,))


CONFIGS = {
    "pipe": MachineConfig.pipe("16-16", 128, memory_access_time=6),
    "conventional": MachineConfig.conventional(128, memory_access_time=16),
    "tib": MachineConfig.tib(memory_access_time=6),
}


def _step(sim: Simulator, cycles: int, now: int = 0) -> int:
    """Drive the machine through the reference per-cycle phase order."""
    for _ in range(cycles):
        sim.memory.begin_cycle(now)
        sim.engine.update(now)
        sim.frontend.update(now)
        sim.backend.step(now)
        if sim.backend.halted:
            sim.frontend.halt()
        sim.frontend.post_issue(now)
        sim.memory.end_cycle(now)
        now += 1
    return now


# ----------------------------------------------------------------------
# Signature purity and stability
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_signature_is_pure(name, loop_program):
    """Fingerprinting mid-run must not change any machine state.

    Machine A is fingerprinted every cycle, machine B never; after the
    same number of cycles both machines must be in identical states and
    produce identical counter snapshots.
    """
    config = CONFIGS[name]
    sim_a = Simulator(config, loop_program, skip=False, replay=False)
    sim_b = Simulator(config, loop_program, skip=False, replay=False)
    book_a, book_b = StatsBook(sim_a), StatsBook(sim_b)
    now_a = now_b = 0
    for _ in range(200):
        now_a = _step(sim_a, 1, now_a)
        machine_signature(sim_a, now_a)
        machine_signature(sim_a, now_a)  # repeated calls included
        now_b = _step(sim_b, 1, now_b)
    assert machine_signature(sim_a, now_a) == machine_signature(sim_b, now_b)
    assert book_a.snapshot() == book_b.snapshot()
    assert sim_a.backend.state.snapshot() == sim_b.backend.state.snapshot()


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_signature_repeated_calls_equal_and_hashable(name, loop_program):
    """The same state must fingerprint identically, with a stable hash."""
    sim = Simulator(CONFIGS[name], loop_program, skip=False, replay=False)
    now = _step(sim, 150)
    first = machine_signature(sim, now)
    second = machine_signature(sim, now)
    assert first == second
    assert hash(first) == hash(second)


def test_signature_equal_across_machines(loop_program):
    """Two identically-driven machines fingerprint identically each cycle."""
    config = CONFIGS["pipe"]
    sim_a = Simulator(config, loop_program, skip=False, replay=False)
    sim_b = Simulator(config, loop_program, skip=False, replay=False)
    now = 0
    for _ in range(120):
        now_a = _step(sim_a, 1, now)
        now_b = _step(sim_b, 1, now)
        assert now_a == now_b
        now = now_a
        assert machine_signature(sim_a, now) == machine_signature(sim_b, now)


# ----------------------------------------------------------------------
# StatsBook completeness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_stats_book_covers_every_result_counter(name, loop_program):
    """Every counter surfaced by SimulationResult must be in the ledger.

    This is the tripwire for new stats: a counter added to a dataclass
    is picked up automatically (or rejected at construction), and this
    test pins the plain-attribute manifests.
    """
    sim = Simulator(CONFIGS[name], loop_program)
    book = StatsBook(sim)
    labels = set(book.labels)
    expected = {
        "backend.instructions",
        "backend.branches",
        "backend.branches_taken",
        "backend.stalls",
        "memory.external.total_accepted",
        "memory.external.busy_cycles",
        "memory.fpu.operations_started",
        "memory.fpu.results_delivered",
        "cache.hits",
        "cache.misses",
        "cache.fills",
        "cache.line_replacements",
        "mem.acceptance_conflicts",
        "mem.by_source_bytes",
        "engine.ordering_hazards",
        "engine.ldq_max_wait_entries",
        "fetch.instructions_supplied",
        "fetch.redirects",
        "fetch.squashed_instructions",
    }
    expected |= {
        f"queue.{q}.{c}"
        for q in ("LAQ", "LDQ", "SAQ", "SDQ")
        for c in ("total_pushes", "total_pops", "max_occupancy")
    }
    missing = expected - labels
    assert not missing, f"StatsBook lost counters: {sorted(missing)}"
    # Every dataclass field of every stats object must be present.
    for prefix, stats in (
        ("fetch", sim.frontend.stats),
        ("cache", sim.cache.stats),
        ("mem", sim.memory.stats),
        ("engine", sim.engine.stats),
    ):
        for field in dataclasses.fields(stats):
            assert f"{prefix}.{field.name}" in labels


def test_stats_book_rejects_unknown_field_type(loop_program):
    """A stats field the book cannot delta must fail construction."""
    sim = Simulator(CONFIGS["pipe"], loop_program)

    @dataclasses.dataclass
    class GrownStats:
        hits: int = 0
        label: str = "not-a-counter"

    sim.cache.stats = GrownStats()
    with pytest.raises(RuntimeError, match="cannot account for counter"):
        StatsBook(sim)


def test_stats_book_rejects_bool_counters(loop_program):
    sim = Simulator(CONFIGS["pipe"], loop_program)

    @dataclasses.dataclass
    class FlagStats:
        warmed_up: bool = False

    sim.cache.stats = FlagStats()
    with pytest.raises(RuntimeError, match="cannot account for counter"):
        StatsBook(sim)


def test_stats_book_diff_apply_roundtrip(loop_program):
    """diff() captures counter movement; apply() reproduces it exactly."""
    sim = Simulator(CONFIGS["pipe"], loop_program)
    book = StatsBook(sim)
    before = book.snapshot()
    backend = sim.backend
    backend.instructions += 7
    backend.stalls["frontend_empty"] += 3
    sim.engine.stats.ordering_hazards += 2
    sim.memory.stats.by_source_bytes["icache"] = 64
    sim.engine.laq.total_pushes += 5
    after = book.snapshot()
    delta = book.diff(before, after)
    assert book.max_deltas_zero(delta)
    book.apply(delta)
    doubled = book.snapshot()
    assert book.diff(after, doubled) == delta
    assert backend.instructions == 14
    assert backend.stalls["frontend_empty"] == 6
    assert sim.memory.stats.by_source_bytes["icache"] == 128


def test_stats_book_flags_moving_max_counters(loop_program):
    """A max-style counter that moved blocks engagement."""
    sim = Simulator(CONFIGS["pipe"], loop_program)
    book = StatsBook(sim)
    before = book.snapshot()
    sim.engine.stats.ldq_max_wait_entries += 1
    delta = book.diff(before, book.snapshot())
    assert not book.max_deltas_zero(delta)
    assert "ldq_max_wait_entries" in " ".join(sorted(MAX_FIELDS))


# ----------------------------------------------------------------------
# Controller bookkeeping
# ----------------------------------------------------------------------
def test_loop_reports_shape(loop_program):
    sim = Simulator(CONFIGS["pipe"], loop_program, skip=True, replay=True)
    result = sim.run()
    controller = sim.replay_controller
    assert isinstance(controller, ReplayController)
    reports = controller.loop_reports()
    assert reports, "the loop kernel must produce at least one backedge target"
    top = reports[0]
    assert top["phase"] == "engaged"
    assert top["replayed_cycles"] == controller.replayed_cycles
    assert top["replayed_cycles"] < result.cycles
    assert top["iteration_cycles"] * top["replayed_iterations"] == (
        top["replayed_cycles"]
    )
