"""Property tests for the generative workload layer.

Three guarantees, over seeded samples rather than hand-picked kernels:

* the generator is a pure function of (seed, budget) — byte-identical
  kernels on every call;
* every generated kernel compiles, and the compiled program's final
  memory/scalar state is **bit-identical** to the float32-exact
  reference interpreter;
* malformed kernels are rejected by the validator with messages that
  name the kernel and the offending statement.
"""

import struct

import pytest

from repro.cpu.functional import FunctionalSimulator
from repro.kernels.codegen import CompileError, compile_kernel
from repro.kernels.dsl import (
    Affine,
    ArrayDecl,
    Computed,
    ConstRef,
    If,
    IndexRef,
    Indirect,
    IntBinOp,
    IntConst,
    IntLoad,
    IntScalarRef,
    IntScalarUpdate,
    Kernel,
    KernelValidationError,
    Load,
    LoadIndirect,
    Loop,
    ScalarUpdate,
    Store,
    validate_kernel,
)
from repro.kernels.generate import (
    BUDGETS,
    HashRand,
    ShapeBudget,
    generate_workload,
)
from repro.kernels.reference import run_kernel_reference
from repro.kernels.serialize import (
    SerializeError,
    workload_from_json,
    workload_to_json,
)
from repro.kernels.suite import build_kernel_suite

#: Seeds for the per-test sample.  Small on purpose: the fuzz CLI and
#: the CI fuzz job sweep wide ranges; tier-1 pins a representative slice.
SEEDS = (0, 1, 2, 3, 11, 47, 101, 2026)


# ----------------------------------------------------------------------
# HashRand
# ----------------------------------------------------------------------
class TestHashRand:
    def test_deterministic_stream(self):
        a = HashRand(42)
        b = HashRand(42)
        assert [a.next_u64() for _ in range(10)] == [
            b.next_u64() for _ in range(10)
        ]

    def test_different_seeds_diverge(self):
        assert HashRand(1).next_u64() != HashRand(2).next_u64()

    def test_randint_bounds(self):
        rand = HashRand(7)
        values = {rand.randint(3, 9) for _ in range(200)}
        assert values == set(range(3, 10))

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError, match="empty range"):
            HashRand(0).randint(5, 4)

    def test_f32_small_is_exact_float32(self):
        rand = HashRand(3)
        for _ in range(50):
            value = rand.f32_small()
            assert struct.unpack("<f", struct.pack("<f", value))[0] == value


# ----------------------------------------------------------------------
# Generator determinism and well-formedness
# ----------------------------------------------------------------------
class TestGeneratorDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_workload(self, seed):
        first = generate_workload(seed, "tiny")
        second = generate_workload(seed, "tiny")
        assert first == second

    def test_budgets_are_independent_streams(self):
        tiny = generate_workload(5, "tiny")
        default = generate_workload(5, "default")
        assert tiny.budget == "tiny"
        assert default.budget == "default"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_kernels_validate_and_compile(self, seed):
        workload = generate_workload(seed, "tiny")
        validate_kernel(workload.kernel, list(workload.arrays))
        compiled = compile_kernel(workload.kernel)
        assert compiled.body_instruction_count > 0

    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError, match="unknown budget"):
            generate_workload(0, "no-such-budget")

    def test_budget_requires_power_of_two_arrays(self):
        with pytest.raises(ValueError, match="not a power of two"):
            ShapeBudget(name="bad", float_array_length=48)

    def test_generated_kernels_are_not_classic(self):
        # The extended feature mix must actually exercise the
        # structured compiler, not collapse into the Livermore subset.
        structured = sum(
            0 if generate_workload(seed, "tiny").kernel.is_classic else 1
            for seed in SEEDS
        )
        assert structured == len(SEEDS)


class TestCodegenReferenceBitIdentity:
    """Compiled program vs interpreter, bit for bit, per seed."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_kernel_bit_identical(self, seed):
        workload = generate_workload(seed, "tiny")
        kernel = workload.kernel
        suite = build_kernel_suite(
            [kernel], list(workload.arrays), source_name=f"gen{seed}.s"
        )
        reference_arrays = suite.initial_reference_arrays()
        scalars = run_kernel_reference(kernel, reference_arrays)

        simulator = FunctionalSimulator(suite.program, max_steps=5_000_000)
        simulator.run()
        memory = simulator.memory

        for decl in suite.arrays:
            base = suite.array_base(decl.name)
            for position, expected in enumerate(reference_arrays[decl.name]):
                raw = bytes(memory[base + 4 * position : base + 4 * position + 4])
                if decl.kind == "float":
                    want = struct.pack("<f", expected)
                else:
                    want = struct.pack("<I", int(expected) & 0xFFFFFFFF)
                assert raw == want, f"{decl.name}[{position}] diverged"
        for position, name in enumerate(kernel.scalars):
            address = suite.scalar_result_address(kernel.label, position)
            assert bytes(memory[address : address + 4]) == struct.pack(
                "<f", scalars[name]
            ), f"scalar {name} diverged"
        for position, name in enumerate(kernel.int_scalars):
            address = suite.int_scalar_result_address(kernel.label, position)
            assert bytes(memory[address : address + 4]) == struct.pack(
                "<I", scalars[name] & 0xFFFFFFFF
            ), f"int scalar {name} diverged"


# ----------------------------------------------------------------------
# Validator diagnostics: named kernel, named statement
# ----------------------------------------------------------------------
_ARRAYS = [
    ArrayDecl("x", 32, "float"),
    ArrayDecl("ix", 8, "int", (1, 2, 3)),
]


def _kernel(statements, **kwargs) -> Kernel:
    defaults = dict(number=0, name="probe", iterations=4, tag="probe")
    defaults.update(kwargs)
    return Kernel(statements=tuple(statements), **defaults)


class TestValidatorDiagnostics:
    def test_undeclared_array_names_kernel_and_statement(self):
        kernel = _kernel(
            [Store("zz", Affine(1, 0), Load("x", Affine(1, 0)))]
        )
        with pytest.raises(
            KernelValidationError,
            match=r"kernel 'probe', statements\[0\] \(Store to 'zz'\): "
            r"references undeclared array 'zz'",
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_undeclared_constant_named(self):
        kernel = _kernel([Store("x", Affine(1, 0), ConstRef("missing"))])
        with pytest.raises(
            KernelValidationError,
            match="references undeclared constant 'missing'",
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_undeclared_scalar_named(self):
        kernel = _kernel([ScalarUpdate("phantom", Load("x", Affine(1, 0)))])
        with pytest.raises(
            KernelValidationError,
            match="updates undeclared scalar 'phantom'",
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_zero_trip_count_rejected(self):
        kernel = _kernel(
            [
                Loop(
                    "j",
                    0,
                    (Store("x", Affine(1, 0), Load("x", Affine(1, 0))),),
                )
            ]
        )
        with pytest.raises(
            KernelValidationError,
            match=r"statements\[0\] \(Loop over 'j'\): trip count must be "
            r"positive, got 0",
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_negative_trip_count_rejected(self):
        kernel = _kernel(
            [
                Loop(
                    "j",
                    -3,
                    (Store("x", Affine(1, 0), Load("x", Affine(1, 0))),),
                )
            ]
        )
        with pytest.raises(
            KernelValidationError, match="trip count must be positive, got -3"
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_shadowed_loop_variable_rejected(self):
        inner = Loop("i", 2, (Store("x", Affine(1, 0), Load("x", Affine(1, 0))),))
        kernel = _kernel([inner])
        with pytest.raises(
            KernelValidationError, match="shadows an enclosing loop variable"
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_out_of_scope_loop_variable_rejected(self):
        kernel = _kernel(
            [Store("x", Affine(1, 0), Load("x", Computed(IndexRef("never"))))]
        )
        with pytest.raises(
            KernelValidationError,
            match="references loop variable 'never' which is not in scope",
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_statement_path_reaches_into_nested_blocks(self):
        kernel = _kernel(
            [
                Loop(
                    "j",
                    2,
                    (
                        If(
                            IntBinOp("<", IndexRef("j"), IntConst(1)),
                            (ScalarUpdate("ghost", Load("x", Affine(1, 0))),),
                        ),
                    ),
                )
            ]
        )
        with pytest.raises(
            KernelValidationError,
            match=r"statements\[0\]\.body\[0\]\.then\[0\] "
            r"\(ScalarUpdate of 'ghost'\)",
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_out_of_range_affine_rejected(self):
        kernel = _kernel(
            [Store("x", Affine(1, 30), Load("x", Affine(1, 0)))],
            iterations=8,
        )
        with pytest.raises(
            KernelValidationError, match=r"affine access x\[37\] out of range"
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_out_of_range_indirect_rejected(self):
        arrays = [
            ArrayDecl("x", 8, "float"),
            ArrayDecl("ix", 8, "int", (99,)),
        ]
        kernel = _kernel(
            [Store("x", Affine(1, 0), LoadIndirect("x", Indirect("ix", Affine(1, 0))))]
        )
        with pytest.raises(
            KernelValidationError, match="out-of-range indirect index"
        ):
            validate_kernel(kernel, arrays)

    def test_array_kind_mismatch_named(self):
        kernel = _kernel(
            [
                IntScalarUpdate(
                    "k",
                    IntBinOp("+", IntScalarRef("k"), IntLoad("x", IntConst(0))),
                )
            ],
            int_scalars={"k": 0},
        )
        with pytest.raises(
            KernelValidationError,
            match="array 'x' is declared float but used as int",
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_float_int_scalar_name_overlap_rejected(self):
        kernel = _kernel(
            [Store("x", Affine(1, 0), Load("x", Affine(1, 0)))],
            scalars={"q": 1.0},
            int_scalars={"q": 1},
        )
        with pytest.raises(
            KernelValidationError,
            match="both float and integer scalars",
        ):
            validate_kernel(kernel, _ARRAYS)

    def test_suite_builder_propagates_named_diagnostics(self):
        from repro.kernels.suite import build_kernel_suite

        kernel = _kernel([Store("zz", Affine(1, 0), Load("x", Affine(1, 0)))])
        with pytest.raises(
            KernelValidationError, match="kernel 'probe'.*undeclared array 'zz'"
        ):
            build_kernel_suite([kernel], _ARRAYS)

    def test_suite_builder_rejects_duplicate_labels(self):
        from repro.kernels.suite import build_kernel_suite

        kernel = _kernel([Store("x", Affine(1, 0), Load("x", Affine(1, 0)))])
        with pytest.raises(ValueError, match="duplicate kernel label 'probe'"):
            build_kernel_suite([kernel, kernel], _ARRAYS)


# ----------------------------------------------------------------------
# Compiler guardrails for structured kernels
# ----------------------------------------------------------------------
class TestStructuredCompilerLimits:
    def test_too_many_nested_loop_vars_rejected(self):
        body: tuple = (Store("x", Affine(1, 0), Load("x", Affine(1, 0))),)
        for number in range(8):
            body = (Loop(f"j{number}", 2, body),)
        kernel = _kernel(body)
        with pytest.raises(CompileError, match="too many nested loop variables"):
            compile_kernel(kernel)

    def test_oversized_iteration_count_rejected(self):
        kernel = _kernel(
            [
                IntScalarUpdate(
                    "k", IntBinOp("+", IntScalarRef("k"), IntConst(1))
                )
            ],
            iterations=0x8000,
            int_scalars={"k": 0},
        )
        with pytest.raises(CompileError, match="16-bit trip-count immediate"):
            compile_kernel(kernel)


# ----------------------------------------------------------------------
# Serialization round-trip (the corpus format)
# ----------------------------------------------------------------------
class TestSerialization:
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_round_trip_generated(self, seed):
        workload = generate_workload(seed, "tiny")
        text = workload_to_json(workload.kernel, workload.arrays, seed=seed)
        kernel, arrays, metadata = workload_from_json(text)
        assert kernel == workload.kernel
        assert tuple(arrays) == workload.arrays
        assert metadata["seed"] == seed

    def test_rejects_unknown_node_type(self):
        workload = generate_workload(0, "tiny")
        text = workload_to_json(workload.kernel, workload.arrays)
        broken = text.replace('"t": "Store"', '"t": "Teleport"', 1)
        with pytest.raises(SerializeError, match="unknown node type 'Teleport'"):
            workload_from_json(broken)

    def test_rejects_wrong_format_version(self):
        workload = generate_workload(0, "tiny")
        text = workload_to_json(workload.kernel, workload.arrays)
        broken = text.replace('"format": 1', '"format": 99', 1)
        with pytest.raises(SerializeError, match="unsupported corpus format"):
            workload_from_json(broken)

    def test_rejects_invalid_json(self):
        with pytest.raises(SerializeError, match="not valid JSON"):
            workload_from_json("{nope")

    def test_missing_field_names_path(self):
        with pytest.raises(SerializeError, match="missing field 'kernel'"):
            workload_from_json('{"format": 1, "arrays": []}')


# ----------------------------------------------------------------------
# Livermore stays classic (the paper's figures are untouched)
# ----------------------------------------------------------------------
def test_livermore_kernels_remain_classic():
    from repro.kernels.loops import make_kernels

    for kernel in make_kernels(scale=0.05):
        assert kernel.is_classic, f"{kernel.label} fell off the classic path"


def test_budget_registry_names_match():
    for name, budget in BUDGETS.items():
        assert budget.name == name
