"""Unit tests for the SimulationResult container."""

from repro.core.config import MachineConfig
from repro.core.results import QueueSnapshot, SimulationResult
from repro.frontend.base import FetchStats
from repro.frontend.icache import CacheStats
from repro.memory.system import MemoryStats


def make_result(cycles=1000, instructions=400, **overrides):
    defaults = dict(
        config=MachineConfig.pipe("16-16", 128),
        cycles=cycles,
        instructions=instructions,
        halted=True,
        cache=CacheStats(hits=90, misses=10),
        fetch=FetchStats(demand_requests=5, prefetch_requests=20),
        memory=MemoryStats(loads_accepted=50, stores_accepted=40),
        stalls={"ldq_empty": 100, "frontend_empty": 0},
        queues={
            "LAQ": QueueSnapshot("LAQ", pushes=50, pops=50, max_occupancy=3)
        },
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestRates:
    def test_ipc_and_cpi(self):
        result = make_result(cycles=1000, instructions=400)
        assert result.ipc == 0.4
        assert result.cpi == 2.5

    def test_zero_cycles_safe(self):
        result = make_result(cycles=0, instructions=0)
        assert result.ipc == 0.0
        assert result.cpi == 0.0

    def test_total_stalls(self):
        assert make_result().total_stalls == 100


class TestSummary:
    def test_contains_key_numbers(self):
        result = make_result()
        text = result.summary()
        assert "1000" in text
        assert "0.400" in text
        assert "90 hits / 10 misses" in text
        assert "ldq_empty=100" in text
        assert "LAQ:max=3" in text

    def test_no_stalls_rendered(self):
        result = make_result(stalls={})
        assert "none" in result.summary()


class TestQueueSnapshot:
    def test_fields(self):
        snapshot = QueueSnapshot("SDQ", pushes=7, pops=7, max_occupancy=2)
        assert snapshot.name == "SDQ"
        assert snapshot.pushes == snapshot.pops == 7
