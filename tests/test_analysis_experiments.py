"""Tests for the experiment runners (reduced scale, reduced sizes).

The full-fidelity claim checks run in the benchmark harness; here we
verify every experiment runs end to end, produces reports, and that the
shape checks *pass at a representative reduced scale* for the
table-style experiments.  The figure-level claims at reduced scale are
exercised in test_paper_shapes.py.
"""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    run_experiment,
)

CACHE_SIZES = (32, 128, 512)


@pytest.fixture(scope="module")
def context(small_suite):
    return ExperimentContext(
        program=small_suite.program,
        cache_sizes=CACHE_SIZES,
        suite=small_suite,
        scale=0.10,
    )


class TestTableExperiments:
    def test_table1(self, context):
        report = run_experiment("table1", context)
        assert "Table I" in report.text
        assert report.all_passed, report.render_checks()

    def test_table2(self, context):
        report = run_experiment("table2", context)
        assert "Table II" in report.text
        assert report.all_passed, report.render_checks()


class TestExperimentPlumbing:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "figure4",
            "figure5",
            "figure6",
            "headline",
            "ablations",
            "hill",
            "tib",
            "queues",
            "assoc",
            "delays",
        }

    def test_unknown_experiment_rejected(self, context):
        with pytest.raises(KeyError):
            run_experiment("figure9", context)

    def test_sweep_memoisation(self, context):
        """Two experiments sharing a parameter point reuse the sweep."""
        before = dict(context._sweeps)
        series_one = context.sweep(memory_access_time=6, input_bus_width=8)
        series_two = context.sweep(memory_access_time=6, input_bus_width=8)
        assert series_one is series_two
        assert len(context._sweeps) == len(before) + 1


class TestHeadlineExperiment:
    def test_runs_and_reports(self, context):
        report = run_experiment("headline", context)
        assert "speedup" in report.text
        assert report.checks
        assert report.all_passed, report.render_checks()


class TestExtensionExperiments:
    """The extension experiments (Hill policies, TIB, queue sizes,
    associativity) must run and their findings must hold at reduced
    scale just like the paper's own figures."""

    def test_hill(self, context):
        report = run_experiment("hill", context)
        assert "always" in report.text
        assert report.all_passed, report.render_checks()

    def test_tib(self, context):
        report = run_experiment("tib", context)
        assert "TIB" in report.text
        assert report.all_passed, report.render_checks()

    def test_queues(self, context):
        report = run_experiment("queues", context)
        assert "IQ" in report.text
        assert report.all_passed, report.render_checks()

    def test_associativity(self, context):
        report = run_experiment("assoc", context)
        assert "1-way" in report.text
        assert report.all_passed, report.render_checks()

    def test_delay_slots(self, context):
        report = run_experiment("delays", context)
        assert "delay" in report.text
        assert report.all_passed, report.render_checks()
