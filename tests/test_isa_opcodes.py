"""Unit tests for the opcode map and its static properties."""

import pytest

from repro.isa.opcodes import (
    BRANCH_CLASS_BIT,
    BRANCH_CONDITIONS,
    MAX_BRANCH_DELAY,
    OpClass,
    Opcode,
)


class TestBranchBit:
    def test_branch_opcodes_have_the_bit(self):
        for op in Opcode:
            if op.op_class == OpClass.BRANCH:
                assert op.value & BRANCH_CLASS_BIT, op
                assert op.is_branch

    def test_non_branch_opcodes_lack_the_bit(self):
        for op in Opcode:
            if op.op_class != OpClass.BRANCH:
                assert not (op.value & BRANCH_CLASS_BIT), op
                assert not op.is_branch

    def test_all_branch_conditions_mapped(self):
        branch_ops = {op for op in Opcode if op.is_branch}
        assert branch_ops == set(BRANCH_CONDITIONS)


class TestParcelCounts:
    def test_immediates_are_two_parcel(self):
        for op in (Opcode.ADDI, Opcode.LI, Opcode.LIH, Opcode.LD, Opcode.ST,
                   Opcode.LBR, Opcode.SLTI):
            assert op.is_two_parcel, op

    def test_register_forms_are_one_parcel(self):
        for op in (Opcode.ADD, Opcode.LDX, Opcode.STX, Opcode.NOP,
                   Opcode.HALT, Opcode.PBRA, Opcode.PBRNE, Opcode.LBRR):
            assert not op.is_two_parcel, op


class TestReadWriteSets:
    def test_alu_rr_reads_both_sources(self):
        assert Opcode.ADD.reads_rs1 and Opcode.ADD.reads_rs2
        assert Opcode.ADD.writes_rd

    def test_li_writes_without_reading(self):
        assert Opcode.LI.writes_rd
        assert not Opcode.LI.reads_rs1
        assert not Opcode.LI.reads_rs2

    def test_loads_read_base_not_dest(self):
        assert Opcode.LD.reads_rs1
        assert not Opcode.LD.writes_rd
        assert Opcode.LDX.reads_rs1 and Opcode.LDX.reads_rs2

    def test_stores_do_not_write(self):
        assert not Opcode.ST.writes_rd
        assert not Opcode.STX.writes_rd

    def test_pbra_ignores_condition_register(self):
        assert not Opcode.PBRA.reads_rs1

    def test_conditional_branches_read_condition(self):
        for op in (Opcode.PBREQ, Opcode.PBRNE, Opcode.PBRLT, Opcode.PBRGE):
            assert op.reads_rs1, op


class TestUniqueness:
    def test_opcode_values_unique(self):
        values = [op.value for op in Opcode]
        assert len(values) == len(set(values))

    def test_mnemonics_unique_and_lowercase(self):
        mnemonics = [op.mnemonic for op in Opcode]
        assert len(mnemonics) == len(set(mnemonics))
        assert all(m == m.lower() for m in mnemonics)

    def test_max_delay(self):
        assert MAX_BRANCH_DELAY == 7


class TestOpClassCoverage:
    @pytest.mark.parametrize("op", list(Opcode))
    def test_every_opcode_has_a_class(self, op):
        assert isinstance(op.op_class, OpClass)
