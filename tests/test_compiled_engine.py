"""Tests of the per-config compiled step-kernel engine (repro.core.compiled).

The differential matrix (``test_scheduler_differential``) proves the
kernels are byte-identical to the reference loop; this module covers the
machinery itself: the content-addressed compile cache (one compile per
config per process), spec sensitivity (distinct configs get distinct
specializations), the escape hatches, the purity of ``generate_source``,
and a generated-source golden for the headline PIPE configuration so
codegen changes are reviewed as diffs, not discovered as regressions.
"""

from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.compiled import (
    CompiledKernel,
    clear_compile_cache,
    compile_stats,
    config_fingerprint,
    generate_source,
    kernel_for,
    kernel_spec_for,
)
from repro.core.config import MachineConfig
from repro.core.simulator import Simulator, simulate

GOLDEN = Path(__file__).parent / "goldens" / "compiled_kernel_headline.py"
CONV_GOLDEN = Path(__file__).parent / "goldens" / "compiled_kernel_conventional.py"


def _pipe(**overrides) -> MachineConfig:
    return MachineConfig.pipe("16-16", 128, memory_access_time=6, **overrides)


def _sim(config=None, program=None, **kwargs) -> Simulator:
    if config is None:
        config = _pipe()
    if program is None:
        program = assemble("halt")
    kwargs.setdefault("skip", True)
    kwargs.setdefault("replay", True)
    kwargs.setdefault("compiled", True)
    return Simulator(config, program, **kwargs)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test sees an empty kernel cache and leaves none behind."""
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestCompileCache:
    def test_same_config_compiles_once_per_process(self, tiny_program):
        before = compile_stats()["compiles"]
        for _ in range(3):
            simulate(_pipe(), tiny_program, compiled=True)
        stats = compile_stats()
        assert stats["kernels"] == 1
        assert stats["compiles"] == before + 1

    def test_same_spec_returns_the_same_kernel_object(self):
        first = kernel_for(_sim())
        second = kernel_for(_sim())
        assert first is second
        assert isinstance(first, CompiledKernel)

    def test_distinct_configs_get_distinct_specializations(self, tiny_program):
        configs = [
            _pipe(),
            _pipe().with_overrides(icache_size=64),
            MachineConfig.conventional(128, memory_access_time=6),
        ]
        kernels = {kernel_for(_sim(c, tiny_program)) for c in configs}
        assert len(kernels) == 3
        assert compile_stats()["kernels"] == 3

    def test_engine_flags_are_part_of_the_key(self):
        # Same machine, different engine toggles: distinct kernels, since
        # the skip block and the replay backedge block are folded in or
        # out at codegen time.
        variants = [
            _sim(skip=True, replay=True),
            _sim(skip=True, replay=False),
            _sim(skip=False, replay=False),
        ]
        assert len({kernel_for(s) for s in variants}) == 3

    def test_tracing_is_part_of_the_key(self, tiny_program, tmp_path):
        from repro.core.trace import JsonLinesSink, Tracer

        plain = kernel_for(_sim(program=tiny_program))
        tracer = Tracer()
        tracer.attach(JsonLinesSink(tmp_path / "t.jsonl"))
        traced_sim = _sim(program=tiny_program, tracer=tracer)
        traced = kernel_for(traced_sim)
        tracer.close()
        assert plain is not traced
        assert plain.spec.traced is False and traced.spec.traced is True
        # the untraced kernel has no emit calls at all
        assert "emit" not in plain.source
        assert "emit" in traced.source

    def test_monkeypatched_component_disables_its_fold(self):
        sim = _sim()
        sim.frontend.poll_requests = lambda now: []
        patched = kernel_for(sim)
        assert patched.spec.poll_guard is False
        assert patched is not kernel_for(_sim())


class TestEscapeHatch:
    def test_env_var_falls_back_to_the_interpreter(
        self, tiny_program, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NO_COMPILED", "1")
        before = compile_stats()
        sim = Simulator(_pipe(), tiny_program)
        assert sim.compiled_enabled is False
        result = sim.run()
        assert compile_stats() == before  # nothing was compiled
        monkeypatch.delenv("REPRO_NO_COMPILED")
        assert result == simulate(_pipe(), tiny_program, compiled=True)

    def test_explicit_argument_wins_over_env(self, tiny_program, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMPILED", "1")
        result = simulate(_pipe(), tiny_program, compiled=True)
        assert compile_stats()["kernels"] == 1
        monkeypatch.delenv("REPRO_NO_COMPILED")
        assert result == simulate(_pipe(), tiny_program, compiled=False)


class TestDispatchCache:
    """The second cache level: per-(program, config) dispatch tables."""

    def test_dispatch_table_is_cached_per_program_and_config(
        self, tiny_program
    ):
        simulate(_pipe(), tiny_program, compiled=True)
        stats = compile_stats()
        assert stats["dispatch_tables"] == 1
        assert stats["dispatch_handlers"] > 0
        hits = stats["dispatch_cache_hits"]
        simulate(_pipe(), tiny_program, compiled=True)
        assert compile_stats()["dispatch_tables"] == 1
        assert compile_stats()["dispatch_cache_hits"] == hits + 1
        # a different program under the same config is a new table
        simulate(_pipe(), assemble("halt"), compiled=True)
        assert compile_stats()["dispatch_tables"] == 2

    def test_clear_drops_stale_program_kernels(self, tiny_program):
        """A cleared cache cannot serve stale per-program dispatch tables.

        ``clear_compile_cache`` documents that both cache levels clear
        together; this pins it.
        """
        baseline = simulate(_pipe(), tiny_program, compiled=True)
        assert compile_stats()["dispatch_tables"] == 1
        clear_compile_cache()
        stats = compile_stats()
        assert stats["kernels"] == 0
        assert stats["dispatch_tables"] == 0
        assert stats["dispatch_handlers"] == 0
        # the rerun rebuilds from scratch (a miss, not a stale hit) and
        # still reproduces the pre-clear run exactly
        hits = stats["dispatch_cache_hits"]
        assert simulate(_pipe(), tiny_program, compiled=True) == baseline
        after = compile_stats()
        assert after["dispatch_tables"] == 1
        assert after["dispatch_cache_hits"] == hits


class TestFrontendInlining:
    def test_headline_spec_inlines_frontend_and_dispatch(self, tiny_program):
        spec = kernel_spec_for(_sim(program=tiny_program))
        assert spec.inline_frontend is True
        assert spec.specialize_dispatch is True
        assert spec.line_size == 16
        source = generate_source(spec)
        # the frontend phases are open-coded, not bound-method calls...
        assert "frontend_update(" not in source
        assert "frontend_post_issue(" not in source
        # ...and execution goes through the per-program handler table
        assert "dispatch_get(instruction)" in source

    def test_conventional_and_tib_specs_inline_their_frontends(
        self, tiny_program
    ):
        conv = kernel_spec_for(
            _sim(MachineConfig.conventional(128, memory_access_time=6))
        )
        assert conv.inline_frontend is True
        tib = kernel_spec_for(
            _sim(MachineConfig.tib(memory_access_time=6), tiny_program)
        )
        assert tib.inline_frontend is True
        assert tib.tib_block_size is not None
        assert tib.tib_stream_capacity is not None

    def test_frontend_subclass_falls_back_byte_identically(
        self, tiny_program
    ):
        """A subclass inherits COMPILED_FRONTEND_INLINE, not eligibility.

        The emitted state machines assume the exact shipped classes; a
        subclass (which may override anything) must drop to bound-method
        calls and still reproduce the run exactly.
        """
        from repro.frontend.pipe_fetch import PipeFetchUnit

        baseline = simulate(_pipe(), tiny_program, compiled=True)

        class TweakedPipe(PipeFetchUnit):
            pass

        sim = _sim(program=tiny_program)
        sim.frontend.__class__ = TweakedPipe
        kernel = kernel_for(sim)
        assert kernel.spec.inline_frontend is False
        assert kernel.spec.poll_guard is True  # unrelated folds survive
        assert "frontend_update(" in kernel.source
        assert sim.run() == baseline

    def test_monkeypatched_frontend_method_disables_inlining(
        self, tiny_program
    ):
        sim = _sim(program=tiny_program)
        original = sim.frontend.consume
        sim.frontend.consume = lambda now: original(now)
        assert kernel_spec_for(sim).inline_frontend is False


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        assert config_fingerprint(_pipe()) == config_fingerprint(_pipe())

    def test_sensitive_to_any_knob(self):
        base = config_fingerprint(_pipe())
        assert (
            config_fingerprint(_pipe().with_overrides(memory_access_time=7))
            != base
        )
        assert (
            config_fingerprint(_pipe().with_overrides(icache_size=64)) != base
        )

    def test_is_a_hex_digest(self):
        digest = config_fingerprint(_pipe())
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestGenerateSource:
    def test_is_deterministic(self):
        spec = kernel_spec_for(_sim())
        assert generate_source(spec) == generate_source(spec)

    def test_spec_for_equal_sims_is_equal(self):
        assert kernel_spec_for(_sim()) == kernel_spec_for(_sim())

    def test_constants_are_folded_into_literals(self):
        spec = kernel_spec_for(_sim())
        source = generate_source(spec)
        # config constants appear as literals, not attribute reads
        assert str(spec.max_cycles) in source
        assert "sim.config" not in source
        # the hot loop reads no tracer and no fault hooks when disabled
        assert "tracer" not in source

    def test_headline_kernel_matches_the_golden(self, tiny_program):
        """Codegen output for the headline PIPE config is golden-pinned.

        Regenerate with:
            PYTHONPATH=src python -c "
            from tests.test_compiled_engine import regenerate_golden;
            regenerate_golden()"
        and review the diff.
        """
        spec = kernel_spec_for(
            Simulator(
                _pipe(), tiny_program, skip=True, replay=True, compiled=True
            )
        )
        assert generate_source(spec) == GOLDEN.read_text()

    def test_conventional_kernel_matches_the_golden(self):
        """The conventional frontend's inlined kernel is golden-pinned too.

        This is the frontend whose emitted body leans on the icache
        residency-epoch memos, so its codegen deserves its own diff
        review.  Regenerate alongside the headline golden.
        """
        spec = kernel_spec_for(
            _sim(MachineConfig.conventional(128, memory_access_time=6))
        )
        assert spec.inline_frontend is True
        assert generate_source(spec) == CONV_GOLDEN.read_text()


def regenerate_golden() -> None:  # pragma: no cover - maintenance helper
    GOLDEN.write_text(generate_source(kernel_spec_for(_sim())))
    CONV_GOLDEN.write_text(
        generate_source(
            kernel_spec_for(
                _sim(MachineConfig.conventional(128, memory_access_time=6))
            )
        )
    )
