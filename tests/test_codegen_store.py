"""Tests of the persistent codegen artifact store and warm-fleet sweeps.

Three layers are covered here.  The store itself
(``repro.core.codegen_store``): round-trip identity against the pinned
codegen goldens, atomic publish, and the quarantine path — a tampered
artifact must be set aside and regenerated, never executed.  The
compiled engine's disk integration (``repro.core.compiled``): a fresh
process warm-starts from artifacts a previous one published, and the
``REPRO_NO_DISK_CODEGEN`` hatch restores today's behaviour exactly.
And the warm-fleet orchestration (``repro.core.parallel`` /
``repro.core.resilience``): config-affinity batching is a pure
scheduling optimisation — results, reports, and checkpoint manifests
are byte-identical to the serial and unbatched paths, including when a
worker is killed mid-batch.
"""

import json
import marshal
from pathlib import Path

import pytest

from repro.core import faults
from repro.core.codegen_store import (
    CodegenStore,
    decode_code,
    encode_code,
)
from repro.core.compiled import (
    clear_compile_cache,
    compile_stats,
    flush_codegen_artifacts,
    generate_source,
    kernel_spec_for,
)
from repro.core.config import MachineConfig
from repro.core.faults import FaultPlan
from repro.core.parallel import (
    affinity_batches,
    config_affinity_key,
    simulate_many,
)
from repro.core.resilience import (
    FaultReport,
    SweepCheckpoint,
    SweepSupervisor,
    supervised_simulate_many,
)
from repro.core.simulator import Simulator, simulate
from repro.core.sweep import run_cache_sweep
from repro.cpu.dispatch import install_handler_bundle, serialize_handlers

GOLDEN = Path(__file__).parent / "goldens" / "compiled_kernel_headline.py"
CONV_GOLDEN = Path(__file__).parent / "goldens" / "compiled_kernel_conventional.py"


def _pipe(**overrides) -> MachineConfig:
    overrides.setdefault("memory_access_time", 6)
    overrides.setdefault("input_bus_width", 8)
    return MachineConfig.pipe("16-16", overrides.pop("icache_size", 128), **overrides)


def _headline_spec(program):
    sim = Simulator(_pipe(), program, skip=True, replay=True, compiled=True)
    return kernel_spec_for(sim)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test sees empty in-process caches and leaves none behind."""
    clear_compile_cache()
    yield
    clear_compile_cache()
    faults.deactivate()


@pytest.fixture
def disk_store(tmp_path, monkeypatch):
    """Enable the persistent store against a throwaway cache root."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NO_DISK_CODEGEN", "0")
    clear_compile_cache()  # drop any store bound to the old root
    yield CodegenStore(tmp_path / "codegen")
    clear_compile_cache()


# ----------------------------------------------------------------------
# The store itself
# ----------------------------------------------------------------------
class TestStoreRoundTrip:
    def test_kernel_round_trip_is_byte_identical_to_the_golden(
        self, tmp_path, tiny_program
    ):
        """Source published to disk comes back equal to the pinned golden."""
        spec = _headline_spec(tiny_program)
        source = generate_source(spec)
        assert source == GOLDEN.read_text()
        code = compile(source, "<golden>", "exec")

        store = CodegenStore(tmp_path)
        store.store_kernel("headline", source, code)
        reloaded = CodegenStore(tmp_path).load_kernel("headline")
        assert reloaded is not None
        loaded_source, loaded_code = reloaded
        assert loaded_source == GOLDEN.read_text()
        # marshal interns references differently after a load cycle, so
        # normalise both sides through one round-trip before comparing
        normalised = marshal.loads(marshal.dumps(code))
        assert marshal.dumps(loaded_code) == marshal.dumps(normalised)

    def test_conventional_golden_round_trips_too(self, tmp_path):
        config = MachineConfig.conventional(
            128, memory_access_time=6, input_bus_width=8
        )
        from repro.asm import assemble

        sim = Simulator(config, assemble("halt"), compiled=True)
        source = generate_source(kernel_spec_for(sim))
        assert source == CONV_GOLDEN.read_text()
        store = CodegenStore(tmp_path)
        store.store_kernel("conv", source, compile(source, "<g>", "exec"))
        assert CodegenStore(tmp_path).load_kernel("conv")[0] == source

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = CodegenStore(tmp_path)
        assert store.load_kernel("nope") is None
        assert store.stats.misses == 1

    def test_publish_is_atomic_no_temp_droppings(self, tmp_path):
        store = CodegenStore(tmp_path)
        store.store_kernel("k", "x = 1\n", compile("x = 1\n", "<k>", "exec"))
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        assert leftovers == []
        assert len(store.entries()) == 1

    def test_dispatch_bundles_merge_across_stores(self, tmp_path):
        code = compile("def handler(state):\n    return None\n", "<h>", "exec")
        one = {"a": {"instruction": {}, "source": "s1", "code": encode_code(code)}}
        two = {"b": {"instruction": {}, "source": "s2", "code": encode_code(code)}}
        store = CodegenStore(tmp_path)
        store.store_dispatch("prog", one)
        store.store_dispatch("prog", two)
        merged = CodegenStore(tmp_path).load_dispatch("prog")
        assert set(merged) == {"a", "b"}

    def test_clear_and_describe(self, tmp_path):
        store = CodegenStore(tmp_path)
        store.store_kernel("k", "x = 1\n", compile("x = 1\n", "<k>", "exec"))
        text = store.describe()
        assert "artifacts  : 1" in text
        assert store.clear() == 1
        assert store.entries() == []

    def test_decode_code_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_code("not-base64-marshal!!")


class TestQuarantine:
    def _publish_one(self, tmp_path) -> Path:
        store = CodegenStore(tmp_path)
        store.store_kernel("k", "x = 1\n", compile("x = 1\n", "<k>", "exec"))
        (entry,) = store.entries()
        return entry

    def test_tampered_payload_is_quarantined_not_loaded(self, tmp_path):
        entry = self._publish_one(tmp_path)
        payload = json.loads(entry.read_text())
        payload["payload"]["source"] = "import os; os.abort()\n"
        entry.write_text(json.dumps(payload))

        store = CodegenStore(tmp_path)
        assert store.load_kernel("k") is None  # checksum mismatch
        assert store.stats.quarantined == 1
        assert store.entries() == []  # moved out of the live tree
        assert len(store.quarantined_entries()) == 1

    def test_garbage_json_is_quarantined(self, tmp_path):
        entry = self._publish_one(tmp_path)
        entry.write_text("{ not json")
        store = CodegenStore(tmp_path)
        assert store.load_kernel("k") is None
        assert store.stats.quarantined == 1

    def test_undecodable_code_is_quarantined_even_with_a_valid_checksum(
        self, tmp_path
    ):
        from repro.core.codegen_store import _payload_checksum

        entry = self._publish_one(tmp_path)
        wrapper = json.loads(entry.read_text())
        wrapper["payload"]["code"] = "!!definitely-not-marshal!!"
        wrapper["checksum"] = _payload_checksum(wrapper["payload"])
        entry.write_text(json.dumps(wrapper))

        store = CodegenStore(tmp_path)
        assert store.load_kernel("k") is None
        assert store.stats.quarantined == 1


# ----------------------------------------------------------------------
# Disk integration of the compiled engine
# ----------------------------------------------------------------------
class TestDiskWarmStart:
    def test_cold_then_warm_process_hits_disk_and_matches(
        self, disk_store, tiny_program
    ):
        reference = simulate(_pipe(), tiny_program, compiled=False)
        cold = simulate(_pipe(), tiny_program, compiled=True)
        flush_codegen_artifacts()
        assert cold == reference
        assert len(disk_store.entries()) >= 1
        stored = compile_stats()["disk_kernel_stores"]
        assert stored >= 1

        # A "new process": in-memory caches dropped, disk root kept.
        clear_compile_cache()
        before = compile_stats()
        warm = simulate(_pipe(), tiny_program, compiled=True)
        after = compile_stats()
        assert warm == reference
        assert after["disk_kernel_hits"] == before["disk_kernel_hits"] + 1
        assert after["compiles"] == before["compiles"]  # nothing recompiled

    def test_dispatch_bundle_warms_handler_cache(self, disk_store, tiny_program):
        simulate(_pipe(), tiny_program, compiled=True)
        flush_codegen_artifacts()
        clear_compile_cache()
        before = compile_stats()
        simulate(_pipe(), tiny_program, compiled=True)
        after = compile_stats()
        assert after["disk_handler_hits"] > before["disk_handler_hits"]
        assert (
            after["dispatch_handler_compiles"]
            == before["dispatch_handler_compiles"]
        )

    def test_tampered_artifacts_are_regenerated_never_executed(
        self, disk_store, tiny_program
    ):
        reference = simulate(_pipe(), tiny_program, compiled=False)
        simulate(_pipe(), tiny_program, compiled=True)
        flush_codegen_artifacts()
        assert disk_store.entries()

        # Tamper with every artifact: if the store ever trusted these,
        # the simulation would crash (or corrupt its numbers) instead of
        # matching the reference.
        for entry in disk_store.entries():
            wrapper = json.loads(entry.read_text())
            wrapper["payload"]["source"] = "raise RuntimeError('executed')\n"
            entry.write_text(json.dumps(wrapper))

        clear_compile_cache()
        result = simulate(_pipe(), tiny_program, compiled=True)
        flush_codegen_artifacts()
        assert result == reference
        assert compile_stats()["codegen_quarantined"] >= 1
        assert CodegenStore(disk_store.root).quarantined_entries()
        # the store healed: fresh artifacts were republished and verify
        fresh = CodegenStore(disk_store.root)
        assert fresh.entries()
        clear_compile_cache()
        assert simulate(_pipe(), tiny_program, compiled=True) == reference
        assert compile_stats()["disk_kernel_hits"] >= 1


class TestEscapeHatch:
    def test_no_disk_codegen_leaves_the_tree_untouched(
        self, tmp_path, monkeypatch, tiny_program
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_DISK_CODEGEN", "1")
        clear_compile_cache()
        before = compile_stats()  # counters are cumulative per process
        reference = simulate(_pipe(), tiny_program, compiled=False)
        result = simulate(_pipe(), tiny_program, compiled=True)
        flush_codegen_artifacts()
        assert result == reference
        assert not (tmp_path / "codegen").exists()
        stats = compile_stats()
        for counter in (
            "disk_kernel_hits",
            "disk_kernel_stores",
            "disk_handler_hits",
            "disk_handler_stores",
        ):
            assert stats[counter] == before[counter]


# ----------------------------------------------------------------------
# Config-affinity scheduling
# ----------------------------------------------------------------------
class TestAffinityBatches:
    KEYS = ["a", "b", "a", "c", "b", "a", "a"]

    def test_every_index_appears_exactly_once(self):
        batches = affinity_batches(self.KEYS, jobs=2)
        flat = sorted(i for batch in batches for i in batch)
        assert flat == list(range(len(self.KEYS)))

    def test_batches_are_family_pure(self):
        for batch in affinity_batches(self.KEYS, jobs=2):
            assert len({self.KEYS[i] for i in batch}) == 1

    def test_deterministic(self):
        assert affinity_batches(self.KEYS, jobs=3) == affinity_batches(
            self.KEYS, jobs=3
        )

    def test_cap_limits_batch_size(self):
        batches = affinity_batches(["k"] * 40, jobs=4, max_batch=8)
        assert max(len(b) for b in batches) <= 8
        assert len(batches) >= 5

    def test_affinity_key_tracks_the_kernel_family(self):
        base = _pipe(icache_size=64)
        # size and memory timing never reach the generated kernel text
        assert config_affinity_key(base) == config_affinity_key(
            _pipe(icache_size=256)
        )
        assert config_affinity_key(base) == config_affinity_key(
            _pipe(icache_size=64, memory_access_time=8)
        )
        # a different machine shape is a different family
        assert config_affinity_key(base) != config_affinity_key(
            MachineConfig.pipe("32-32", 64, memory_access_time=6)
        )


def _matrix() -> list[MachineConfig]:
    """A small crosscheck matrix spanning three kernel families."""
    return [
        _pipe(icache_size=64),
        _pipe(icache_size=128),
        MachineConfig.conventional(128, memory_access_time=6, input_bus_width=8),
        _pipe(icache_size=64, memory_access_time=8),
        _pipe(icache_size=256),
    ]


class TestBatchedDifferential:
    def test_batched_pool_matches_serial(self, tiny_program):
        serial = simulate_many(tiny_program, _matrix(), jobs=1)
        batched = simulate_many(tiny_program, _matrix(), jobs=2)
        assert batched == serial

    def test_batched_pool_with_disk_store_matches_serial(
        self, disk_store, tiny_program
    ):
        """Workers + parent priming + persistent store change nothing."""
        serial = simulate_many(tiny_program, _matrix(), jobs=1)
        clear_compile_cache()
        batched = simulate_many(tiny_program, _matrix(), jobs=2)
        assert batched == serial
        assert disk_store.entries()  # the fleet actually published

    def test_affinity_hatch_matches_too(self, tiny_program, monkeypatch):
        serial = simulate_many(tiny_program, _matrix(), jobs=1)
        monkeypatch.setenv("REPRO_NO_AFFINITY", "1")
        unbatched = simulate_many(tiny_program, _matrix(), jobs=2)
        assert unbatched == serial

    def test_supervised_batched_matches_serial(self, tiny_program):
        serial = simulate_many(tiny_program, _matrix(), jobs=1)
        report = FaultReport()
        supervised = supervised_simulate_many(
            tiny_program, _matrix(), jobs=2, report=report
        )
        assert supervised == serial
        assert report.clean

    def test_checkpoint_manifest_bytes_identical_with_and_without_affinity(
        self, tiny_program, tmp_path, monkeypatch
    ):
        strategies = {
            "PIPE 16-16": lambda size, **o: MachineConfig.pipe("16-16", size, **o),
            "conventional": lambda size, **o: MachineConfig.conventional(
                size, **o
            ),
        }
        memory = {"memory_access_time": 6, "input_bus_width": 8}

        def run(path):
            supervisor = SweepSupervisor(
                jobs=2, checkpoint=SweepCheckpoint(path, interval=100)
            )
            series = run_cache_sweep(
                tiny_program,
                cache_sizes=[64, 128],
                strategies=strategies,
                supervisor=supervisor,
                **memory,
            )
            return [s.as_dict() for s in series]

        with_affinity = run(tmp_path / "on.json")
        monkeypatch.setenv("REPRO_NO_AFFINITY", "1")
        without_affinity = run(tmp_path / "off.json")
        assert with_affinity == without_affinity
        assert (tmp_path / "on.json").read_bytes() == (
            tmp_path / "off.json"
        ).read_bytes()


class TestKillMidBatch:
    def test_worker_kill_mid_batch_converges_byte_identical(
        self, tiny_program, monkeypatch
    ):
        monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
        configs = _matrix()
        # worker_kill only fires inside pool workers, so the serial
        # reference is safe to compute after arming.
        serial = simulate_many(tiny_program, configs, jobs=1)
        faults.activate(FaultPlan(seed=11, worker_kill=1.0))
        report = FaultReport()
        survived = supervised_simulate_many(
            tiny_program, configs, jobs=2, max_retries=4, report=report
        )
        assert survived == serial
        assert report.counts().get("worker_crash", 0) >= 1
