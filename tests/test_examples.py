"""Every example script must run cleanly (at a tiny workload scale)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "0.03")
        assert result.returncode == 0, result.stderr
        assert "PIPE is" in result.stdout
        assert "faster" in result.stdout

    def test_cache_design_space(self):
        result = run_example("cache_design_space.py", "4b", "0.03")
        assert result.returncode == 0, result.stderr
        assert "Figure 4b" in result.stdout
        assert "flattest curve" in result.stdout

    def test_write_your_own_kernel(self):
        result = run_example("write_your_own_kernel.py")
        assert result.returncode == 0, result.stderr
        assert "matches the reference bit-for-bit" in result.stdout

    def test_assembly_playground(self):
        result = run_example("assembly_playground.py")
        assert result.returncode == 0, result.stderr
        assert "dot product" in result.stdout

    def test_fetch_policies(self):
        result = run_example("fetch_policies.py", "0.03")
        assert result.returncode == 0, result.stderr
        assert "fetch policy" in result.stdout
        assert "memory-interface priority" in result.stdout

    def test_service_session(self, tmp_path):
        result = run_example(
            "service_session.py",
            "--scale", "0.03",
            "--jobs", "2",
            "--served-out", str(tmp_path / "served.json"),
            "--reference-out", str(tmp_path / "reference.json"),
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "PASS: every served checksum matches" in result.stdout
        served = (tmp_path / "served.json").read_text()
        assert served == (tmp_path / "reference.json").read_text()

    def test_all_examples_are_tested(self):
        """Adding an example without a test here should fail loudly."""
        scripts = {path.name for path in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py",
            "cache_design_space.py",
            "write_your_own_kernel.py",
            "assembly_playground.py",
            "fetch_policies.py",
            "service_session.py",
        }
        assert scripts == tested
