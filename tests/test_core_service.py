"""Tests of the resilient simulation job service (repro.core.service).

Lifecycle coverage runs the service in in-process thread mode
(``pool_jobs=0``): fast to boot, and every robustness mechanism except
the process-level kill/hang injectors is fully live.  The chaos
acceptance test with real worker processes lives in
``test_service_chaos.py``.
"""

import threading
import time

import pytest

from repro.core import faults
from repro.core.config import MachineConfig
from repro.core.service import (
    AdmissionError,
    DeadlineExceeded,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    SimulationService,
)
from repro.core.simcache import SimulationCache, cached_simulate, result_key
from repro.core.simulator import simulate


def _fields(size: int = 128, **overrides) -> dict:
    return MachineConfig.conventional(icache_size=size, **overrides).to_dict()


def _thread_config(**overrides) -> ServiceConfig:
    defaults = dict(
        pool_jobs=0,
        point_timeout=30.0,
        default_deadline=60.0,
        backoff=0.01,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def disarmed():
    faults.deactivate()
    yield
    faults.deactivate()


class TestPointLifecycle:
    def test_served_result_matches_direct_cached_simulate(
        self, tiny_program, tmp_path, disarmed
    ):
        cache = SimulationCache(tmp_path / "cache")
        with ServiceThread(tiny_program, _thread_config(), cache) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, payload = client.simulate(_fields())
        assert status == 200
        direct = cached_simulate(
            MachineConfig.from_dict(_fields()),
            tiny_program,
            cache=SimulationCache(tmp_path / "direct"),
        )
        assert payload["checksum"] == direct.checksum()
        assert payload["result"]["cycles"] == direct.cycles

    def test_second_request_is_a_warm_cache_hit(
        self, tiny_program, tmp_path, disarmed
    ):
        cache = SimulationCache(tmp_path / "cache")
        with ServiceThread(tiny_program, _thread_config(), cache) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            _, first = client.simulate(_fields())
            _, second = client.simulate(_fields())
        assert first["rung"] != "cache"
        assert second["rung"] == "cache"
        assert second["checksum"] == first["checksum"]

    def test_concurrent_duplicates_coalesce_onto_one_simulation(
        self, tiny_program, tmp_path, disarmed
    ):
        cache = SimulationCache(tmp_path / "cache")
        with ServiceThread(tiny_program, _thread_config(), cache) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            outcomes = []

            def hit():
                outcomes.append(client.simulate(_fields(size=256)))

            threads = [threading.Thread(target=hit) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = client.stats()
        assert all(status == 200 for status, _ in outcomes)
        checksums = {payload["checksum"] for _, payload in outcomes}
        assert len(checksums) == 1
        assert stats["coalesce_hits"] > 0
        assert stats["simulations"] == 1
        # At least one waiter rode an existing in-flight simulation.
        assert any(payload["coalesced"] for _, payload in outcomes)

    def test_past_deadline_returns_structured_timeout(
        self, tiny_program, tmp_path, disarmed
    ):
        with ServiceThread(tiny_program, _thread_config()) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, payload = client.simulate(_fields(size=64), deadline=0.0)
        assert status == 504
        assert payload["error"]["type"] == "deadline"

    def test_invalid_config_is_a_400(self, tiny_program, disarmed):
        with ServiceThread(tiny_program, _thread_config()) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, payload = client.simulate({"no_such_field": 1})
            missing, _ = client.request("POST", "/simulate", {})
        assert status == 400
        assert payload["error"]["type"] == "bad_request"
        assert missing == 400


class TestAdmissionControl:
    def test_queue_limit_rejects_with_429(self, tiny_program, disarmed):
        config = _thread_config(queue_limit=0)
        with ServiceThread(tiny_program, config) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, payload = client.simulate(_fields())
            health, _ = client.healthz()
        assert status == 429
        assert payload["error"]["type"] == "queue_full"
        assert health == 200

    def test_load_shed_serves_warm_hits_only(
        self, tiny_program, tmp_path, disarmed
    ):
        cache = SimulationCache(tmp_path / "cache")
        # Warm one key up front, then saturate the shed limit.
        warm = MachineConfig.from_dict(_fields())
        cache.store(warm, tiny_program, simulate(warm, tiny_program))
        config = _thread_config(shed_limit=0)
        with ServiceThread(tiny_program, config, cache) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            cold_status, cold = client.simulate(_fields(size=512))
            warm_status, warm_payload = client.simulate(_fields())
        assert cold_status == 503
        assert cold["error"]["type"] == "load_shed"
        assert warm_status == 200
        assert warm_payload["rung"] == "cache"

    def test_tenant_quota_applies_per_tenant(self, tiny_program, disarmed):
        service = SimulationService(tiny_program, _thread_config(tenant_quota=0))
        with pytest.raises(AdmissionError) as excinfo:
            service._admit("k", "greedy", cold=False)
        assert excinfo.value.type == "tenant_quota"
        assert excinfo.value.status == 429

    def test_injected_queue_full_rejection(self, tiny_program, disarmed):
        faults.activate(faults.FaultPlan(seed=3, queue_full=1.0))
        try:
            with ServiceThread(tiny_program, _thread_config()) as handle:
                client = ServiceClient("127.0.0.1", handle.port)
                status, payload = client.simulate(_fields())
                stats = client.stats()
        finally:
            faults.deactivate()
        assert status == 429
        assert payload["error"]["type"] == "queue_full"
        assert stats["rejected"]["queue_full"] == 1


class TestGracefulDegradation:
    def test_breaker_trips_degrade_but_stay_byte_identical(
        self, tiny_program, tmp_path, disarmed
    ):
        reference = simulate(MachineConfig.from_dict(_fields()), tiny_program)
        faults.activate(faults.FaultPlan(seed=11, breaker_trip=1.0))
        try:
            config = _thread_config(breaker_threshold=1, breaker_cooldown=60.0)
            with ServiceThread(tiny_program, config) as handle:
                client = ServiceClient("127.0.0.1", handle.port)
                status, payload = client.simulate(_fields())
                stats = client.stats()
        finally:
            faults.deactivate()
        # Every fast-path rung tripped; the reference floor served it.
        assert status == 200
        assert payload["rung"] == "reference"
        assert payload["checksum"] == reference.checksum()
        assert all(
            breaker["state"] == "open"
            for breaker in stats["breakers"].values()
        )

    def test_open_breakers_pin_new_points_to_lower_rungs(
        self, tiny_program, disarmed
    ):
        # Trip every fast rung on the first point, then disarm: the
        # second point must *still* run on the reference rung because
        # the breakers are open — no injector involved.
        faults.activate(faults.FaultPlan(seed=11, breaker_trip=1.0))
        config = _thread_config(breaker_threshold=1, breaker_cooldown=600.0)
        try:
            with ServiceThread(tiny_program, config) as handle:
                client = ServiceClient("127.0.0.1", handle.port)
                client.simulate(_fields())
                faults.deactivate()
                status, payload = client.simulate(_fields(size=32))
                stats = client.stats()
        finally:
            faults.deactivate()
        assert status == 200
        assert payload["rung"] == "reference"
        assert stats["faults"].get("engine_fault", 0) >= 1

    def test_half_open_probe_restores_the_fast_path(
        self, tiny_program, disarmed
    ):
        faults.activate(faults.FaultPlan(seed=11, breaker_trip=1.0))
        config = _thread_config(breaker_threshold=1, breaker_cooldown=0.1)
        try:
            with ServiceThread(tiny_program, config) as handle:
                client = ServiceClient("127.0.0.1", handle.port)
                client.simulate(_fields())
                faults.deactivate()
                time.sleep(0.25)  # past the cooldown: probes admitted
                status, payload = client.simulate(_fields(size=32))
                stats = client.stats()
        finally:
            faults.deactivate()
        assert status == 200
        # The probe ran the full ladder again and succeeded, so the
        # compiled breaker closed.
        assert payload["rung"] == "compiled"
        assert stats["breakers"]["compiled"]["state"] == "closed"


class TestObservability:
    def test_healthz_and_stats_surface(self, tiny_program, disarmed):
        with ServiceThread(tiny_program, _thread_config()) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            health_status, health = client.healthz()
            client.simulate(_fields())
            stats = client.stats()
        assert health_status == 200 and health["ok"] is True
        for key in (
            "queue",
            "coalesce_hits",
            "breakers",
            "faults",
            "rungs",
            "codegen",
            "rejected",
        ):
            assert key in stats
        assert stats["simulations"] == 1
        assert stats["queue"]["queue_limit"] == 64

    def test_unknown_route_is_a_404(self, tiny_program, disarmed):
        with ServiceThread(tiny_program, _thread_config()) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, payload = client.request("GET", "/nope")
        assert status == 404
        assert payload["error"]["type"] == "not_found"


class TestSweepJobs:
    def test_job_streams_progress_and_checkpoints(
        self, tiny_program, tmp_path, disarmed
    ):
        cache = SimulationCache(tmp_path / "cache")
        configs = [_fields(size=size) for size in (32, 64, 128)]
        with ServiceThread(tiny_program, _thread_config(), cache) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, job = client.submit_job(configs)
            assert status == 202
            events = list(client.job_events(job["id"]))
            final_status, final = client.job(job["id"])
        assert final_status == 200
        assert final["state"] == "done"
        assert final["done"] == final["total"] == len(configs)
        assert final["checkpoint_points"] == len(configs)
        kinds = [event["type"] for event in events]
        assert kinds.count("point") == len(configs)
        assert kinds[-1] == "end"
        # Every streamed checksum matches a clean reference simulation.
        by_key = {
            result_key(MachineConfig.from_dict(fields), tiny_program): fields
            for fields in configs
        }
        for event in events:
            if event["type"] != "point":
                continue
            config = MachineConfig.from_dict(by_key[event["key"]])
            assert event["checksum"] == simulate(
                config, tiny_program
            ).checksum()

    def test_unknown_job_is_a_404(self, tiny_program, disarmed):
        with ServiceThread(tiny_program, _thread_config()) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, _payload = client.job("job-999")
        assert status == 404

    def test_empty_job_is_rejected(self, tiny_program, disarmed):
        with ServiceThread(tiny_program, _thread_config()) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, payload = client.submit_job([])
        assert status == 400
        assert payload["error"]["type"] == "bad_request"


class TestDirectCore:
    def test_resolve_point_without_sockets(self, tiny_program, disarmed):
        import asyncio

        service = SimulationService(tiny_program, _thread_config())

        async def go():
            try:
                return await service.resolve_point(_fields())
            finally:
                await service.stop()

        payload = asyncio.run(go())
        assert payload["checksum"] == simulate(
            MachineConfig.from_dict(_fields()), tiny_program
        ).checksum()

    def test_deadline_exceeded_is_structured(self, tiny_program, disarmed):
        import asyncio

        service = SimulationService(tiny_program, _thread_config())

        async def go():
            try:
                with pytest.raises(DeadlineExceeded):
                    await service.resolve_point(_fields(), deadline=0.0)
            finally:
                await service.stop()

        asyncio.run(go())
        assert service.deadline_misses == 1
