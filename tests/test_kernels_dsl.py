"""Unit tests for the kernel DSL."""

import pytest

from repro.kernels.dsl import (
    Affine,
    ArrayDecl,
    BinOp,
    ConstRef,
    Indirect,
    Kernel,
    Load,
    LoadIndirect,
    ScalarRef,
    ScalarUpdate,
    Store,
    add,
    div,
    mul,
    sub,
)


class TestAffine:
    def test_evaluation(self):
        assert Affine(mult=3, offset=2).at(5) == 17
        assert Affine().at(4) == 4

    def test_negative_stride_rejected(self):
        with pytest.raises(ValueError):
            Affine(mult=-1)


class TestArrayDecl:
    def test_init_cycling(self):
        decl = ArrayDecl("x", 5, "float", (1.0, 2.0))
        assert decl.initial_values() == [1.0, 2.0, 1.0, 2.0, 1.0]

    def test_zero_fill(self):
        assert ArrayDecl("x", 3).initial_values() == [0, 0, 0]

    def test_kind_validated(self):
        with pytest.raises(ValueError):
            ArrayDecl("x", 4, "double")

    def test_length_validated(self):
        with pytest.raises(ValueError):
            ArrayDecl("x", 0)


class TestBinOp:
    def test_constructors(self):
        node = add(Load("x"), mul(ConstRef("c"), Load("y")))
        assert node.op == "+"
        assert isinstance(node.rhs, BinOp) and node.rhs.op == "*"
        assert sub(Load("x"), Load("y")).op == "-"
        assert div(Load("x"), Load("y")).op == "/"

    def test_commutativity(self):
        x, y = Load("x"), Load("y")
        assert add(x, y).commutative
        assert mul(x, y).commutative
        assert not sub(x, y).commutative
        assert not div(x, y).commutative

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            BinOp("%", Load("x"), Load("y"))


def make_kernel(statements, **kwargs):
    defaults = dict(number=1, name="test", iterations=4)
    defaults.update(kwargs)
    return Kernel(statements=tuple(statements), **defaults)


class TestKernel:
    def test_label(self):
        kernel = make_kernel([Store("x", Affine(), Load("y"))], number=7)
        assert kernel.label == "ll7"

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            make_kernel([])

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            make_kernel([Store("x", Affine(), Load("y"))], iterations=0)

    def test_referenced_arrays(self):
        pointer = Indirect("ix", Affine())
        kernel = make_kernel(
            [
                Store("x", Affine(), add(Load("y"), LoadIndirect("e", pointer))),
                ScalarUpdate("s", mul(ScalarRef("s"), Load("z"))),
            ],
            scalars={"s": 0.0},
        )
        assert kernel.referenced_arrays() == {"x", "y", "z", "e", "ix"}

    def test_indirect_store_references_index_array(self):
        pointer = Indirect("ix", Affine())
        kernel = make_kernel([Store("rh", pointer, Load("y"))])
        assert "ix" in kernel.referenced_arrays()

    def test_max_element_index(self):
        kernel = make_kernel(
            [Store("x", Affine(offset=1), Load("y", Affine(mult=2, offset=3)))],
            iterations=10,
        )
        assert kernel.max_element_index("x") == 10  # i=9, +1
        assert kernel.max_element_index("y") == 21  # 2*9+3
        assert kernel.max_element_index("unused") == -1
