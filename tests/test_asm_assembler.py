"""Unit tests for the two-pass assembler."""

import pytest

from repro.asm import AsmError, assemble
from repro.isa.encoding import InstructionFormat
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import QUEUE_REGISTER


class TestBasics:
    def test_single_instruction(self):
        program = assemble("add r1, r2, r3")
        assert program.layout == [(0, Instruction.alu_rr(Opcode.ADD, 1, 2, 3))]

    def test_fixed32_spacing(self):
        program = assemble("nop\nnop")
        addresses = [addr for addr, _i in program.layout]
        assert addresses == [0, 4]

    def test_parcel_spacing(self):
        program = assemble("nop\nli r1, 5\nnop", fmt=InstructionFormat.PARCEL)
        addresses = [addr for addr, _i in program.layout]
        assert addresses == [0, 2, 6]

    def test_labels_resolve_forward(self):
        program = assemble("lbr b0, target\nnop\ntarget: halt")
        assert program.symbols["target"] == 8
        assert program.layout[0][1].imm == 8

    def test_entry_defaults_to_start_symbol(self):
        program = assemble("nop\nstart: halt")
        assert program.entry_point == 4

    def test_entry_directive(self):
        program = assemble(".entry main\nnop\nmain: halt")
        assert program.entry_point == 4

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("a: nop\na: nop")


class TestDirectives:
    def test_org_and_word(self):
        program = assemble(".org 0x20\nvalue: .word 0xDEADBEEF")
        assert program.symbols["value"] == 0x20
        assert program.load_word(0x20) == 0xDEADBEEF

    def test_org_backwards_rejected(self):
        with pytest.raises(AsmError):
            assemble(".org 0x20\nnop\n.org 0x10\nnop")

    def test_space_and_align(self):
        program = assemble("a: .space 3\n.align 8\nb: .word 1")
        assert program.symbols["a"] == 0
        assert program.symbols["b"] == 8

    def test_equ(self):
        program = assemble(".equ N, 10\n.equ N2, N*2\nli r1, N2")
        assert program.layout[0][1].imm == 20

    def test_equ_forward_reference_rejected(self):
        with pytest.raises(AsmError):
            assemble(".equ A, B\n.equ B, 1")

    def test_word_forward_reference_allowed(self):
        program = assemble(".word later\nlater: .word 1")
        assert program.load_word(0) == program.symbols["later"]

    def test_float_directive(self):
        program = assemble("f: .float 1.5, 0.25")
        assert program.load_float(0) == 1.5
        assert program.load_float(4) == 0.25

    def test_marker(self):
        program = assemble("nop\n.marker here\nnop")
        assert program.markers["here"] == 4

    def test_duplicate_marker_rejected(self):
        with pytest.raises(AsmError):
            assemble(".marker m\n.marker m")

    def test_unknown_directive(self):
        with pytest.raises(AsmError):
            assemble(".bogus 1")


class TestPseudoInstructions:
    def test_mov(self):
        program = assemble("mov r1, r2")
        assert program.layout[0][1] == Instruction.alu_rr(Opcode.OR, 1, 2, 2)

    def test_pushq(self):
        program = assemble("pushq r3")
        instr = program.layout[0][1]
        assert instr.rd == QUEUE_REGISTER and instr.rs1 == 3

    def test_popq(self):
        program = assemble("popq r4")
        instr = program.layout[0][1]
        assert instr.rd == 4 and instr.rs1 == QUEUE_REGISTER

    def test_qtoq(self):
        program = assemble("qtoq")
        instr = program.layout[0][1]
        assert instr.rd == QUEUE_REGISTER and instr.rs1 == QUEUE_REGISTER

    def test_la(self):
        program = assemble("la r1, buf\nbuf: .word 0")
        instr = program.layout[0][1]
        assert instr.op == Opcode.LI
        assert instr.imm == program.symbols["buf"]

    def test_la_range_check(self):
        with pytest.raises(AsmError):
            assemble(".org 0x7000\nx: .word 0\n.org 0x7100\nla r1, x+0x1000")


class TestOperandValidation:
    @pytest.mark.parametrize(
        "text",
        [
            "add r1, r2",  # too few operands
            "add r1, r2, r3, r4",  # too many
            "add r1, r2, 5",  # expression where register expected
            "addi r1, r2, r3",  # register where expression expected
            "lbr r1, 5",  # data register where branch register expected
            "pbrne b0, r1, 9",  # delay out of range
            "ld b1, 0",  # branch register as base
            "unknowable r1",  # unknown mnemonic
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(AsmError):
            assemble(text)

    def test_immediate_overflow(self):
        with pytest.raises(AsmError):
            assemble("li r1, 0x10000")

    def test_lbr_range(self):
        with pytest.raises(AsmError):
            assemble("lbr b0, 0x10000")


class TestMemorySizing:
    def test_default_sizing_covers_code(self):
        program = assemble("nop")
        assert program.memory_size >= 4

    def test_explicit_size_respected(self):
        program = assemble("nop", memory_size=8192)
        assert program.memory_size == 8192

    def test_too_small_size_rejected(self):
        with pytest.raises(AsmError):
            assemble(".org 0x2000\nnop", memory_size=1024)

    def test_instruction_decode_through_program(self):
        program = assemble("xor r3, r4, r5")
        assert program.instruction_at(0) == Instruction.alu_rr(Opcode.XOR, 3, 4, 5)
