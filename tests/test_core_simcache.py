"""Tests of the content-addressed simulation result cache."""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.core.config import MachineConfig
from repro.core.simcache import (
    CACHE_FORMAT_VERSION,
    QUARANTINE_DIR,
    SimulationCache,
    cached_simulate,
    config_fingerprint,
    program_fingerprint,
    result_key,
    sweep_point_keys,
)
from repro.core.simulator import simulate


def _pipe(**overrides) -> MachineConfig:
    return MachineConfig.pipe(
        "16-16", 128, memory_access_time=6, input_bus_width=8, **overrides
    )


class TestFingerprints:
    def test_config_fingerprint_is_stable(self):
        assert config_fingerprint(_pipe()) == config_fingerprint(_pipe())

    def test_config_fingerprint_is_stable_across_processes(self):
        """Keys must not depend on PYTHONHASHSEED / process identity."""
        script = (
            "from repro.core.config import MachineConfig\n"
            "from repro.core.simcache import config_fingerprint\n"
            "c = MachineConfig.pipe('16-16', 128, memory_access_time=6,"
            " input_bus_width=8)\n"
            "print(config_fingerprint(c))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        runs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": src, "PYTHONHASHSEED": seed},
            ).stdout.strip()
            for seed in ("0", "12345")
        }
        assert runs == {config_fingerprint(_pipe())}

    def test_every_config_field_enters_the_fingerprint(self):
        """The fingerprint hashes to_dict(), which must cover every field."""
        base = _pipe()
        assert set(base.to_dict()) == {
            field.name for field in dataclasses.fields(base)
        }

    def test_field_changes_invalidate_the_fingerprint(self):
        base = _pipe()
        baseline = config_fingerprint(base)
        variants = [
            base.with_overrides(icache_size=256),
            base.with_overrides(iq_size=8),
            base.with_overrides(memory_access_time=1),
            base.with_overrides(memory_pipelined=True),
            base.with_overrides(max_cycles=base.max_cycles * 2),
            MachineConfig.conventional(
                128, memory_access_time=6, input_bus_width=8
            ),
        ]
        fingerprints = {config_fingerprint(config) for config in variants}
        assert baseline not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_program_change_invalidates_key(self, tiny_program, small_program):
        config = _pipe()
        assert program_fingerprint(tiny_program) != program_fingerprint(
            small_program
        )
        assert result_key(config, tiny_program) != result_key(
            config, small_program
        )

    def test_sweep_point_keys_match_single_point_keys(self, tiny_program):
        configs = [_pipe(), _pipe().with_overrides(icache_size=64)]
        assert sweep_point_keys(tiny_program, configs) == [
            result_key(config, tiny_program) for config in configs
        ]


class TestRoundTrip:
    def test_result_json_round_trip(self, tiny_program):
        result = simulate(_pipe(), tiny_program)
        rebuilt = type(result).from_dict(result.to_dict())
        assert rebuilt == result

    def test_tib_result_json_round_trip(self, tiny_program):
        config = MachineConfig.tib(4, 16, memory_access_time=6, input_bus_width=8)
        result = simulate(config, tiny_program)
        rebuilt = type(result).from_dict(result.to_dict())
        assert type(rebuilt.fetch) is type(result.fetch)
        assert rebuilt == result


class TestSimulationCache:
    def test_miss_then_hit(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        config = _pipe()
        first = cached_simulate(config, tiny_program, cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        second = cached_simulate(config, tiny_program, cache)
        assert cache.stats.hits == 1
        assert first == second

    def test_hits_survive_a_fresh_cache_object(self, tiny_program, tmp_path):
        config = _pipe()
        first = cached_simulate(config, tiny_program, SimulationCache(tmp_path))
        reopened = SimulationCache(tmp_path)
        second = cached_simulate(config, tiny_program, reopened)
        assert reopened.stats.hits == 1
        assert first == second

    def test_corrupt_entry_is_a_miss(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        config = _pipe()
        cached_simulate(config, tiny_program, cache)
        (entry,) = cache.entries()
        entry.write_text("{not json")
        assert cache.lookup(config, tiny_program) is None

    def test_clear_and_stats(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        cached_simulate(_pipe(), tiny_program, cache)
        cached_simulate(_pipe().with_overrides(iq_size=8), tiny_program, cache)
        assert len(cache.entries()) == 2
        assert cache.size_bytes() > 0
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_no_cache_passthrough(self, tiny_program):
        result = cached_simulate(_pipe(), tiny_program, None)
        assert result.cycles > 0


class TestCrashSafety:
    """Format v3: atomic publish, checksum verification, quarantine."""

    def test_entries_embed_a_verified_checksum(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        result = cached_simulate(_pipe(), tiny_program, cache)
        (entry,) = cache.entries()
        payload = json.loads(entry.read_text())
        assert payload["version"] == CACHE_FORMAT_VERSION
        assert payload["checksum"] == result.checksum()

    def test_store_leaves_no_temp_droppings(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        cached_simulate(_pipe(), tiny_program, cache)
        leftovers = [
            path
            for path in Path(tmp_path).rglob("*")
            if path.is_file() and path.suffix != ".json"
        ]
        assert leftovers == []

    def test_tampered_payload_is_quarantined(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        cached_simulate(_pipe(), tiny_program, cache)
        (entry,) = cache.entries()
        payload = json.loads(entry.read_text())
        payload["result"]["cycles"] += 1  # a silently wrong number
        entry.write_text(json.dumps(payload))
        assert cache.lookup(_pipe(), tiny_program) is None
        assert cache.stats.quarantined == 1
        assert cache.entries() == []
        quarantined = cache.quarantined_entries()
        assert [path.name for path in quarantined] == [entry.name]

    def test_truncated_entry_is_quarantined(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        cached_simulate(_pipe(), tiny_program, cache)
        (entry,) = cache.entries()
        raw = entry.read_text()
        entry.write_text(raw[: len(raw) // 2])  # a torn, non-atomic write
        assert cache.lookup(_pipe(), tiny_program) is None
        assert cache.stats.quarantined == 1

    def test_version_mismatch_is_quarantined(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        cached_simulate(_pipe(), tiny_program, cache)
        (entry,) = cache.entries()
        payload = json.loads(entry.read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        entry.write_text(json.dumps(payload))
        assert cache.lookup(_pipe(), tiny_program) is None
        assert cache.stats.quarantined == 1

    def test_quarantine_hook_reports_key_and_reason(
        self, tiny_program, tmp_path
    ):
        cache = SimulationCache(tmp_path)
        cached_simulate(_pipe(), tiny_program, cache)
        (entry,) = cache.entries()
        entry.write_text("{torn")
        seen = []
        cache.quarantine_hook = lambda key, reason: seen.append((key, reason))
        cache.lookup(_pipe(), tiny_program)
        ((key, reason),) = seen
        assert entry.name == f"{key}.json"
        assert reason

    def test_quarantined_entry_is_rebuilt_on_the_next_miss(
        self, tiny_program, tmp_path
    ):
        cache = SimulationCache(tmp_path)
        first = cached_simulate(_pipe(), tiny_program, cache)
        (entry,) = cache.entries()
        entry.write_text("{torn")
        second = cached_simulate(_pipe(), tiny_program, cache)
        assert second == first
        assert cache.lookup(_pipe(), tiny_program) == first  # verified again

    def test_describe_reports_the_quarantine(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        cached_simulate(_pipe(), tiny_program, cache)
        assert "quarantine: 0 entries" in cache.describe()
        (entry,) = cache.entries()
        entry.write_text("{torn")
        cache.lookup(_pipe(), tiny_program)
        description = cache.describe()
        assert "quarantine: 1 entry" in description
        assert QUARANTINE_DIR in description

    def test_clear_sweeps_the_quarantine_too(self, tiny_program, tmp_path):
        cache = SimulationCache(tmp_path)
        variant = _pipe().with_overrides(iq_size=8)
        cached_simulate(_pipe(), tiny_program, cache)
        cached_simulate(variant, tiny_program, cache)
        (entry, _other) = cache.entries()
        entry.write_text("{torn")
        cache.lookup(_pipe(), tiny_program)  # one of these quarantines it
        cache.lookup(variant, tiny_program)
        assert cache.stats.quarantined == 1
        assert cache.clear() == 1  # quarantined blobs are not counted
        assert cache.entries() == []
        assert cache.quarantined_entries() == []


class TestQuarantineCaps:
    """Satellite: the quarantine directory is size- and age-capped."""

    def _quarantine_blob(self, cache: SimulationCache, name: str, size: int,
                         age: float = 0.0) -> Path:
        qdir = cache.root / QUARANTINE_DIR
        qdir.mkdir(parents=True, exist_ok=True)
        path = qdir / f"{name}.json"
        path.write_bytes(b"x" * size)
        if age:
            import time

            stamp = time.time() - age
            os.utime(path, (stamp, stamp))
        return path

    def test_size_cap_evicts_oldest_first(self, tmp_path):
        cache = SimulationCache(tmp_path, quarantine_max_bytes=3000)
        old = self._quarantine_blob(cache, "old", 1500, age=300.0)
        mid = self._quarantine_blob(cache, "mid", 1500, age=200.0)
        new = self._quarantine_blob(cache, "new", 1500, age=100.0)
        assert cache.prune_quarantine() == 1
        assert not old.exists()
        assert mid.exists() and new.exists()

    def test_age_cap_expires_stale_blobs(self, tmp_path):
        cache = SimulationCache(tmp_path, quarantine_max_age=60.0)
        stale = self._quarantine_blob(cache, "stale", 10, age=120.0)
        fresh = self._quarantine_blob(cache, "fresh", 10, age=5.0)
        assert cache.prune_quarantine() == 1
        assert not stale.exists() and fresh.exists()

    def test_within_caps_nothing_is_pruned(self, tmp_path):
        cache = SimulationCache(tmp_path)
        kept = self._quarantine_blob(cache, "kept", 100, age=10.0)
        assert cache.prune_quarantine() == 0
        assert kept.exists()

    def test_quarantining_an_entry_enforces_the_cap(
        self, tiny_program, tmp_path
    ):
        # A flood of corrupt entries must not grow the quarantine
        # without bound: the cap is applied on every quarantine, not
        # only when someone remembers to prune.
        cache = SimulationCache(tmp_path, quarantine_max_bytes=1)
        cached_simulate(_pipe(), tiny_program, cache)
        (entry,) = cache.entries()
        entry.write_text("{torn")
        cache.lookup(_pipe(), tiny_program)
        assert cache.stats.quarantined == 1
        assert cache.quarantined_entries() == []  # pruned straight away

    def test_clear_quarantine_removes_everything(self, tmp_path):
        cache = SimulationCache(tmp_path)
        self._quarantine_blob(cache, "a", 10)
        self._quarantine_blob(cache, "b", 10)
        assert cache.clear_quarantine() == 2
        assert cache.quarantined_entries() == []

    def test_describe_reports_the_caps(self, tmp_path):
        cache = SimulationCache(tmp_path)
        description = cache.describe()
        assert "cap 4096 KiB / 7 days" in description
