"""Tests of the Program memory-image abstraction and its introspection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm import AsmError, assemble
from repro.asm.program import Program


def sample_program():
    return assemble(
        """
        .entry start
        .equ K, 3
        start:
            li r1, K
            lbr b0, body
        body:
            nop
            halt
        .align 4
        .marker data_begin
        values: .word 10, 20, 30
        floats: .float 1.5
        buffer: .space 8
        .marker data_end
        """
    )


class TestWordAccess:
    def test_load_store_roundtrip(self):
        program = sample_program()
        address = program.symbol("values")
        assert program.load_word(address) == 10
        program.store_word(address, 0xCAFEBABE)
        assert program.load_word(address) == 0xCAFEBABE

    def test_store_wraps_to_32_bits(self):
        program = sample_program()
        address = program.symbol("values")
        program.store_word(address, 2**40 + 7)
        assert program.load_word(address) == 7

    def test_float_access(self):
        program = sample_program()
        address = program.symbol("floats")
        assert program.load_float(address) == 1.5
        program.store_float(address, 0.25)
        assert program.load_float(address) == 0.25

    def test_out_of_range_rejected(self):
        program = sample_program()
        with pytest.raises(IndexError):
            program.load_word(program.memory_size)
        with pytest.raises(IndexError):
            program.store_word(-4, 0)


class TestIntrospection:
    def test_symbols_and_markers(self):
        program = sample_program()
        assert program.symbol("start") == program.entry_point
        assert program.marker("data_end") > program.marker("data_begin")
        with pytest.raises(KeyError):
            program.symbol("nothing")
        with pytest.raises(KeyError):
            program.marker("nothing")

    def test_code_span(self):
        program = sample_program()
        span = program.code_span("data_begin", "data_end")
        assert span == 3 * 4 + 4 + 8  # words + float + space

    def test_instructions_between(self):
        program = sample_program()
        body = program.symbol("body")
        instructions = program.instructions_between(body, body + 8)
        assert [i.op.mnemonic for _a, i in instructions] == ["nop", "halt"]

    def test_disassemble_range(self):
        program = sample_program()
        text = program.disassemble(end=program.symbol("body"))
        assert "li r1, 3" in text
        assert "halt" not in text


class TestFullBenchmarkListing:
    def test_every_laid_out_instruction_decodes(self, tiny_suite):
        """Layout and memory image must agree instruction by instruction."""
        program = tiny_suite.program
        for address, instruction in program.layout:
            assert program.instruction_at(address) == instruction

    def test_disassembly_reassembles_byte_identically(self, tiny_suite):
        """The full benchmark's disassembly is valid assembler input and
        reassembles to the same code bytes (placed at the same addresses
        with .org directives)."""
        program = tiny_suite.program
        lines = []
        for address, instruction in program.layout:
            lines.append(f".org {address}")
            lines.append(instruction.disassemble())
        rebuilt = assemble("\n".join(lines), memory_size=program.memory_size)
        for address, instruction in program.layout:
            assert rebuilt.instruction_at(address) == instruction


class TestAssemblerFuzz:
    """The assembler must reject garbage with AsmError, never crash."""

    @given(st.text(max_size=200))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            assemble(text)
        except AsmError:
            pass  # rejection is the expected outcome for garbage

    @given(
        st.lists(
            st.sampled_from(
                [
                    "add r1, r2, r3",
                    "ld r0, 64",
                    "st r0, 64",
                    "qtoq",
                    "li r4, -100",
                    "pbrne b0, r1, 3",
                    "label:",
                    ".align 8",
                    ".word 1, 2",
                    "halt",
                ]
            ),
            max_size=30,
        )
    )
    def test_fragment_soup_never_crashes(self, fragments):
        try:
            program = assemble("\n".join(fragments))
        except AsmError:
            return
        assert isinstance(program, Program)
